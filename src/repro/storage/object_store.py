"""An Amazon-S3-like object store.

High access latency (>10 ms, Table 2), practically unlimited
throughput (each request is charged latency but there is no shared
server bottleneck — S3 scales horizontally), and *eventually
consistent listings*: a freshly PUT key only becomes visible to
``list_prefix``/``exists`` polling after ``visibility_lag``, which is
what makes the S3-synchronization bars of Fig. 6 both slow and highly
variable.

Reads of an existing key are read-after-write consistent (S3's 2019
semantics for new-object PUTs).  Values may carry a *nominal* byte
size larger than their materialized payload so that 100 GB datasets
can be modelled without allocating them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.net.network import payload_size, ship
from repro.simulation.kernel import Kernel, current_thread


@dataclass
class _StoredObject:
    value: Any
    nbytes: int
    put_time: float
    visible_at: float


class ObjectStore:
    """A flat key/value blob store with S3 latencies."""

    def __init__(self, kernel: Kernel, config: Config = DEFAULT_CONFIG,
                 name: str = "s3"):
        self.kernel = kernel
        self.config = config
        self.name = name
        self._objects: dict[str, _StoredObject] = {}
        self._rng = kernel.rng.stream(f"storage.{name}")
        self.put_count = 0
        self.get_count = 0
        self.list_count = 0

    # -- data path ------------------------------------------------------------

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Store ``value`` under ``key`` (charges PUT latency)."""
        if nbytes is None:
            nbytes = payload_size(value)
        with self.kernel.tracer.span(
                f"{self.name}.put", kind="client", endpoint=self.name,
                attributes={"key": key, "bytes": nbytes}):
            delay = self.config.storage.s3_put.sample(self._rng, nbytes)
            current_thread().sleep(delay)
            lag = self.config.storage.s3_visibility_lag
            self._objects[key] = _StoredObject(
                value=ship(value), nbytes=nbytes,
                put_time=self.kernel.now,
                visible_at=self.kernel.now + lag)
            self.put_count += 1

    def get(self, key: str) -> Any:
        """Fetch ``key`` (charges GET latency, size-dependent)."""
        stored = self._objects.get(key)
        nbytes = stored.nbytes if stored is not None else 0
        with self.kernel.tracer.span(
                f"{self.name}.get", kind="client", endpoint=self.name,
                attributes={"key": key, "bytes": nbytes}):
            delay = self.config.storage.s3_get.sample(self._rng, nbytes)
            current_thread().sleep(delay)
            stored = self._objects.get(key)  # re-check after the delay
            if stored is None:
                self.get_count += 1
                raise NoSuchKeyError(f"{self.name}: no such key {key!r}")
            self.get_count += 1
            return ship(stored.value)

    def delete(self, key: str) -> None:
        with self.kernel.tracer.span(
                f"{self.name}.delete", kind="client", endpoint=self.name,
                attributes={"key": key}):
            delay = self.config.storage.s3_put.sample(self._rng, 0)
            current_thread().sleep(delay)
            self._objects.pop(key, None)

    # -- polling path (eventually consistent) -------------------------------------

    def list_prefix(self, prefix: str) -> list[str]:
        """List visible keys under ``prefix`` (charges one GET latency).

        Keys PUT within the last ``visibility_lag`` seconds are *not*
        returned: this is the eventual consistency that foils naive
        S3-based synchronization.
        """
        with self.kernel.tracer.span(
                f"{self.name}.list", kind="client", endpoint=self.name,
                attributes={"prefix": prefix}):
            delay = self.config.storage.s3_get.sample(self._rng, 0)
            current_thread().sleep(delay)
            self.list_count += 1
            now = self.kernel.now
            return sorted(
                key for key, stored in self._objects.items()
                if key.startswith(prefix) and stored.visible_at <= now)

    def exists(self, key: str) -> bool:
        """HEAD request with listing (eventual) visibility."""
        with self.kernel.tracer.span(
                f"{self.name}.head", kind="client", endpoint=self.name,
                attributes={"key": key}):
            delay = self.config.storage.s3_get.sample(self._rng, 0)
            current_thread().sleep(delay)
            self.list_count += 1
            stored = self._objects.get(key)
            return stored is not None and stored.visible_at <= self.kernel.now

    # -- introspection (no latency; for tests and harnesses) ------------------------

    def size(self) -> int:
        return len(self._objects)

    def stored_bytes(self) -> int:
        return sum(o.nbytes for o in self._objects.values())
