"""Cost-aware tiered storage: hot data next to compute, cold data on
the cheap tier.

A :class:`TieredStore` routes keys across an ordered list of
:class:`~repro.storage.backend.StorageBackend` tiers (hottest first,
coldest last), tracking per-key heat (recency + access frequency).
Writes land on the hottest tier that will take them; a background
sweep demotes objects that have gone cold — or that overflow the hot
tier's capacity budget, least-recently-used first — down a tier, and
repeated access to a cold object promotes it back next to compute.
Migrations run on simulated threads, pay the real read+write cost of
both tiers, and are traced as ``storage.promote``/``storage.demote``
spans.

Correctness under concurrency and faults:

* **No lost writes during migration.**  Every mutation of a key's
  placement — a ``put`` installing a fresh value, a migration
  committing, a superseded copy being evicted — runs under that key's
  FIFO write lock.  A migration snapshots the key's version, copies
  the value out of the source tier *outside* the lock, then validates
  the snapshot, writes the destination, re-routes, and deletes the
  source copy in one locked critical section: a concurrent ``put``
  either lands before validation (the migration aborts without ever
  writing its stale copy) or blocks until the eviction has finished
  (so the eviction can never delete a value it did not validate).
* **Read-after-write across tier failure.**  If the tier that owns a
  key stops answering (a crashed grid node mid-demotion, say), reads
  fall back to the remaining tiers in order — the migration's
  destination copy, written *before* the source copy is deleted,
  keeps acknowledged data readable.  A read that finds the key gone
  from the tier it started on re-checks the routing table and retries
  on the key's new home, so an eviction landing mid-read never
  surfaces a spurious miss for a key that still exists.

The store itself satisfies the backend protocol, so anything written
against :class:`~repro.storage.backend.StorageBackend` — the PyWren
executor, DSO passivation, the ML dataset loaders — runs unmodified
over tiered storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NetworkError, NoSuchKeyError, NodeCrashedError
from repro.metrics.cost import CostLedger
from repro.net.network import payload_size
from repro.simulation.kernel import Kernel, current_thread
from repro.simulation.primitives import Lock
from repro.storage.backend import BackendProfile, BackendStats, StorageBackend

#: Infrastructure failures a tier may surface (vs. app-level misses).
_INFRA = (NetworkError, NodeCrashedError)


@dataclass
class _Heat:
    """Per-key access heat: recency for LRU, a windowed hit count for
    promotion decisions."""

    last_access: float = 0.0
    window_start: float = 0.0
    hits: int = 0

    def touch(self, now: float, window: float) -> int:
        if now - self.window_start > window:
            self.window_start = now
            self.hits = 0
        self.hits += 1
        self.last_access = now
        return self.hits


@dataclass
class TieringStats:
    promotions: int = 0
    demotions: int = 0
    #: Migrations abandoned because a write raced them (the no-lost-
    #: writes guard firing) or the destination tier failed.
    aborted_migrations: int = 0
    #: Reads served by the hottest tier / by any colder tier.
    hot_hits: int = 0
    cold_hits: int = 0
    #: Reads answered by a non-owning tier after the owner failed.
    fallback_reads: int = 0


class TieredStore:
    """Routes keys across priced storage tiers with heat tracking.

    ``tiers`` is ordered hottest → coldest.  Build the tiers with one
    shared :class:`~repro.metrics.cost.CostLedger` so the whole
    deployment bills into a single account (``cost_summary`` then
    shows the split per tier); the store adopts ``ledger`` or, by
    default, the hottest tier's.
    """

    def __init__(self, kernel: Kernel, tiers: Sequence[StorageBackend],
                 config: Config = DEFAULT_CONFIG, name: str = "tiered",
                 ledger: CostLedger | None = None):
        if not tiers:
            raise ValueError("need at least one tier")
        self.kernel = kernel
        self.tiers = list(tiers)
        self.config = config
        self.name = name
        self.ledger = ledger if ledger is not None else tiers[0].ledger
        self.stats = BackendStats()
        self.tiering = TieringStats()
        hot, cold = self.tiers[0].profile, self.tiers[-1].profile
        #: Composite identity: hot-tier latency, cold-tier capacity
        #: price — what the placement policy is aiming for.
        self.profile = BackendProfile(
            name=name, tier="tiered",
            get_latency=hot.get_latency, put_latency=hot.put_latency,
            dollars_per_gb_month=cold.dollars_per_gb_month,
            get_request_dollars=hot.get_request_dollars,
            put_request_dollars=hot.put_request_dollars)
        self._where: dict[str, int] = {}
        self._heat: dict[str, _Heat] = {}
        self._versions: dict[str, int] = {}
        self._nbytes: dict[str, int] = {}
        self._migrating: set[str] = set()
        #: Per-key write locks serializing installs, migrations, and
        #: evictions (retained for the life of the store — bounded by
        #: the keyspace, like ``_versions``).
        self._locks: dict[str, Lock] = {}
        self._sweeping = False

    # -- placement bookkeeping ----------------------------------------------

    def tier_of(self, key: str) -> int | None:
        """Index of the tier currently owning ``key`` (introspection)."""
        return self._where.get(key)

    def _touch(self, key: str) -> int:
        heat = self._heat.get(key)
        if heat is None:
            heat = self._heat[key] = _Heat()
        return heat.touch(self.kernel.now, self.config.tiering.heat_window)

    def _route(self, key: str, tier: int, nbytes: int) -> None:
        self._where[key] = tier
        self._nbytes[key] = nbytes
        self._versions[key] = self._versions.get(key, 0) + 1

    def _forget(self, key: str) -> None:
        self._where.pop(key, None)
        self._heat.pop(key, None)
        self._versions.pop(key, None)
        self._nbytes.pop(key, None)

    def _lock(self, key: str) -> Lock:
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = Lock(self.kernel)
        return lock

    # -- data path ----------------------------------------------------------

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Write to the hottest tier that will take it.

        A tier that fails with an infrastructure error (crashed node)
        is skipped, so writes survive the loss of the hot tier; the
        old copy on a different tier is deleted once the write lands,
        keeping exactly one authoritative copy.
        """
        if nbytes is None:
            nbytes = payload_size(value)
        last_error: Exception | None = None
        with self._lock(key):
            old_tier = self._where.get(key)
            for index, tier in enumerate(self.tiers):
                try:
                    tier.put(key, value, nbytes=nbytes)
                except _INFRA as exc:
                    last_error = exc
                    continue
                self._route(key, index, nbytes)
                self._touch(key)
                self.stats.puts += 1
                self.stats.bytes_written += nbytes
                if old_tier is not None and old_tier != index:
                    self._unlocked_evict(key, old_tier)
                return
        raise last_error if last_error is not None else \
            NetworkError(f"{self.name}: no tier accepted {key!r}")

    def get(self, key: str) -> Any:
        """Read from the owning tier, falling back across tiers if it
        fails; repeated cold reads promote the key next to compute."""
        owner = self._where.get(key)
        if owner is None:
            # Unknown key: one honest miss round trip on the cold tier.
            self.stats.gets += 1
            return self.tiers[-1].get(key)
        for _attempt in range(len(self.tiers) + 1):
            try:
                value = self.tiers[owner].get(key)
                break
            except _INFRA:
                value = self._fallback_read(key, owner)
                owner = self._where.get(key, owner)
                break
            except NoSuchKeyError:
                # A migration's eviction may land while this read was
                # in flight on the source tier: if the key is still
                # routed — just somewhere else now — retry on its new
                # home instead of surfacing a spurious miss.
                moved = self._where.get(key)
                if moved is None or moved == owner:
                    raise  # deleted, or the tier truly lost the blob
                owner = moved
        else:
            raise NoSuchKeyError(
                f"{self.name}: {key!r} kept moving mid-read")
        self.stats.gets += 1
        self.stats.bytes_read += self._nbytes.get(key, 0)
        if owner == 0:
            self.tiering.hot_hits += 1
        else:
            self.tiering.cold_hits += 1
        hits = self._touch(key)
        if owner > 0 and hits >= self.config.tiering.promote_hits:
            self.promote(key)
        return value

    def _fallback_read(self, key: str, owner: int) -> Any:
        """The owning tier is down: try every other tier in heat order
        (a committed migration's destination copy keeps acknowledged
        data readable).

        A surviving copy is *adopted* as the new authoritative
        location only under the key's write lock, and only while the
        key is still routed to the failed tier — if a migration or a
        racing ``put`` re-routed the key concurrently, that placement
        wins and the copy is merely served.  On adoption the abandoned
        copy on the failed owner is evicted best-effort in the
        background, so a tier that was only *transiently* down does
        not keep a superseded copy around leaking rent.
        """
        for index, tier in enumerate(self.tiers):
            if index == owner:
                continue
            try:
                value = tier.get(key)
            except (NoSuchKeyError, *_INFRA):
                continue
            self.tiering.fallback_reads += 1
            with self._lock(key):
                if self._where.get(key) == owner:
                    self._where[key] = index
                    self._versions[key] = self._versions.get(key, 0) + 1
                    self.kernel.spawn(self._evict_copy, key, owner,
                                      daemon=True,
                                      name=f"{self.name}-scavenge-{key}")
            return value
        raise NoSuchKeyError(
            f"{self.name}: {key!r} unreadable (owning tier down, "
            f"no surviving copy)")

    def delete(self, key: str) -> None:
        self.stats.deletes += 1
        with self._lock(key):
            owner = self._where.get(key)
            if owner is None:
                self.tiers[-1].delete(key)
                return
            self._forget(key)
            self.tiers[owner].delete(key)

    def list_prefix(self, prefix: str) -> list[str]:
        """Union of every tier's listing (each tier's LIST is charged
        — tiered placement does not make listing cheaper)."""
        self.stats.lists += 1
        found: set[str] = set()
        for tier in self.tiers:
            found.update(tier.list_prefix(prefix))
        return sorted(found)

    def exists(self, key: str) -> bool:
        owner = self._where.get(key)
        self.stats.heads += 1
        return self.tiers[-1 if owner is None else owner].exists(key)

    # -- free paths ---------------------------------------------------------

    def seed(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Install pre-existing data on the *coldest* tier (datasets
        start cheap; the heat machinery promotes what gets used)."""
        if nbytes is None:
            nbytes = payload_size(value)
        self.tiers[-1].seed(key, value, nbytes=nbytes)
        self._route(key, len(self.tiers) - 1, nbytes)

    def size(self) -> int:
        return len(self._where)

    def stored_bytes(self) -> int:
        return sum(self._nbytes.values())

    def dollars_per_gb_month(self) -> float:
        """Effective capacity price of the *current* placement: each
        tier's $/GB-month weighted by the bytes resting on it.  This is
        the number the heat policy optimizes — it falls toward the cold
        tier's price as data ages out of RAM."""
        total = sum(tier.stored_bytes() for tier in self.tiers)
        if total == 0:
            return self.profile.dollars_per_gb_month
        return sum(tier.stored_bytes() * tier.profile.dollars_per_gb_month
                   for tier in self.tiers) / total

    def settle(self) -> None:
        for tier in self.tiers:
            tier.settle()

    # -- migration ----------------------------------------------------------

    def promote(self, key: str) -> None:
        """Move ``key`` one step hotter, on a background thread."""
        owner = self._where.get(key)
        if owner is None or owner == 0 or key in self._migrating:
            return
        self._spawn_migration(key, owner, owner - 1, "storage.promote")

    def demote(self, key: str) -> None:
        """Move ``key`` one step colder, on a background thread."""
        owner = self._where.get(key)
        if owner is None or owner >= len(self.tiers) - 1 \
                or key in self._migrating:
            return
        self._spawn_migration(key, owner, owner + 1, "storage.demote")

    def _spawn_migration(self, key: str, src: int, dst: int,
                         span: str) -> None:
        self._migrating.add(key)
        self.kernel.spawn(self._migrate, key, src, dst, span, daemon=True,
                          name=f"{self.name}-{span.split('.')[1]}-{key}")

    def _migrate(self, key: str, src: int, dst: int, span: str) -> None:
        """Copy src → dst, re-route, then delete the source copy.

        The value is read out of the source tier *outside* the key's
        write lock (so a racing ``put`` never waits on a slow copy),
        but the version snapshot is validated and the destination
        write, re-route, and source eviction all happen in one locked
        critical section.  A ``put`` that lands before validation
        aborts the migration *before* its stale copy ever reaches the
        destination tier; a ``put`` issued during the critical section
        blocks until the source eviction has finished — either way no
        acknowledged write can be deleted or shadowed by a migration.
        """
        counter = ("promotions" if span == "storage.promote"
                   else "demotions")
        try:
            version = self._versions.get(key)
            with self.kernel.tracer.span(
                    span, kind="server", endpoint=self.name,
                    attributes={"key": key,
                                "from": self.tiers[src].profile.name,
                                "to": self.tiers[dst].profile.name}):
                try:
                    value = self.tiers[src].get(key)
                except (NoSuchKeyError, *_INFRA):
                    # Source gone (deleted, or its node died before the
                    # copy was read): nothing to migrate.
                    self.tiering.aborted_migrations += 1
                    return
                nbytes = self._nbytes.get(key, payload_size(value))
                with self._lock(key):
                    if (self._versions.get(key) != version
                            or self._where.get(key) != src):
                        # A write raced the copy: the fresh value wins;
                        # nothing to clean up — the stale copy was
                        # never written to the destination.
                        self.tiering.aborted_migrations += 1
                        return
                    try:
                        self.tiers[dst].put(key, value, nbytes=nbytes)
                    except _INFRA:
                        self.tiering.aborted_migrations += 1
                        return
                    self._where[key] = dst
                    setattr(self.tiering, counter,
                            getattr(self.tiering, counter) + 1)
                    self._unlocked_evict(key, src)
        finally:
            self._migrating.discard(key)

    def _evict_copy(self, key: str, tier: int) -> None:
        """Best-effort delete of a superseded copy, serialized against
        writers via the key's lock; re-checks routing so it never
        deletes a copy that has (re)become authoritative."""
        with self._lock(key):
            if self._where.get(key) == tier:
                return
            self._unlocked_evict(key, tier)

    def _unlocked_evict(self, key: str, tier: int) -> None:
        """Delete ``key``'s superseded copy on ``tier``; the caller
        holds the key's write lock, so no racing ``put`` can install a
        fresh value there while the delete is in flight (a dead tier
        lost the copy along with everything else)."""
        try:
            self.tiers[tier].delete(key)
        except _INFRA:
            pass

    # -- background sweep ---------------------------------------------------

    def sweep(self) -> int:
        """One demotion pass; returns the number of demotions started.

        Demotes keys idle longer than ``demote_after`` one step colder
        (from *any* non-coldest tier, so aged data keeps sinking down a
        memory → block → object stack), then — if the hottest tier is
        over its capacity budget — the least-recently-used hot keys
        until the budget holds.  Runs inline on the calling simulated
        thread's clock for the bookkeeping, with migrations on
        background threads.
        """
        settings = self.config.tiering
        now = self.kernel.now
        started = 0
        coldest = len(self.tiers) - 1
        warm_keys = [key for key, tier in self._where.items()
                     if tier < coldest]
        by_lru = sorted(
            warm_keys,
            key=lambda k: self._heat[k].last_access if k in self._heat
            else 0.0)
        demoted: set[str] = set()
        for key in by_lru:
            heat = self._heat.get(key)
            idle = now - heat.last_access if heat is not None else now
            if idle >= settings.demote_after and key not in self._migrating:
                self.demote(key)
                demoted.add(key)
                started += 1
        hot_bytes = sum(self._nbytes.get(k, 0)
                        for k, tier in self._where.items()
                        if tier == 0 and k not in demoted)
        for key in by_lru:
            if hot_bytes <= settings.hot_capacity_bytes:
                break
            if (key in demoted or key in self._migrating
                    or self._where.get(key) != 0):
                continue
            self.demote(key)
            demoted.add(key)
            hot_bytes -= self._nbytes.get(key, 0)
            started += 1
        return started

    def start_sweeper(self) -> None:
        """Run :meth:`sweep` every ``sweep_period`` on a daemon thread."""
        if self._sweeping:
            return
        self._sweeping = True
        self.kernel.spawn(self._sweeper_loop, daemon=True,
                          name=f"{self.name}-sweeper")

    def stop_sweeper(self) -> None:
        self._sweeping = False

    def _sweeper_loop(self) -> None:
        period = self.config.tiering.sweep_period
        while self._sweeping:
            current_thread().sleep(period)
            if self._sweeping:
                self.sweep()
