"""Simulated cloud storage services.

These are the substrates the paper measures Crucial against, all
implementing the :class:`StorageBackend` protocol (priced requests,
capacity rent, a :class:`~repro.storage.backend.BackendProfile`
identity):

* :class:`ObjectStore` — Amazon S3 (high latency, eventual listing);
* :class:`BlockStore` — a gp3-like block volume (low latency, free
  requests, throughput-capped);
* :class:`MemoryStore` — a flat in-memory tier (RAM prices);
* :class:`TieredStore` — heat-tracked placement across any stack of
  the above (hot next to compute, cold on the cheap tier);
* :class:`QueueService` — Amazon SQS (polling, visibility timeout);
* :class:`NotificationService` — Amazon SNS (pub/sub fan-out);
* :class:`RedisCluster` — Redis with server-side scripts, sharded,
  single-threaded per shard (``.backend()`` adapts it to the
  protocol);
* :class:`DataGrid` — an Infinispan-like in-memory key-value grid
  (``.backend()`` likewise).
"""

from repro.storage.backend import (
    BackendProfile,
    BackendStats,
    BlockStore,
    MemoryStore,
    StorageBackend,
    gp3_profile,
    memory_profile,
    s3_profile,
)
from repro.storage.object_store import ObjectStore
from repro.storage.queue_service import QueueService
from repro.storage.notification import NotificationService
from repro.storage.kvstore import RedisBackend, RedisCluster
from repro.storage.datagrid import DataGrid, GridBackend
from repro.storage.tiering import TieredStore, TieringStats

__all__ = [
    "StorageBackend",
    "BackendProfile",
    "BackendStats",
    "ObjectStore",
    "BlockStore",
    "MemoryStore",
    "TieredStore",
    "TieringStats",
    "QueueService",
    "NotificationService",
    "RedisCluster",
    "RedisBackend",
    "DataGrid",
    "GridBackend",
    "s3_profile",
    "gp3_profile",
    "memory_profile",
]
