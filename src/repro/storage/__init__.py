"""Simulated cloud storage services.

These are the substrates the paper measures Crucial against:

* :class:`ObjectStore` — Amazon S3 (high latency, eventual listing);
* :class:`QueueService` — Amazon SQS (polling, visibility timeout);
* :class:`NotificationService` — Amazon SNS (pub/sub fan-out);
* :class:`RedisCluster` — Redis with server-side scripts, sharded,
  single-threaded per shard;
* :class:`DataGrid` — an Infinispan-like in-memory key-value grid.
"""

from repro.storage.object_store import ObjectStore
from repro.storage.queue_service import QueueService
from repro.storage.notification import NotificationService
from repro.storage.kvstore import RedisCluster
from repro.storage.datagrid import DataGrid

__all__ = [
    "ObjectStore",
    "QueueService",
    "NotificationService",
    "RedisCluster",
    "DataGrid",
]
