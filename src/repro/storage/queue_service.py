"""An Amazon-SQS-like message queue service.

Messages are delivered to *polling* consumers: ``receive`` charges the
(tens of ms) request latency and supports long polling.  Delivered
messages become invisible for a visibility timeout and reappear unless
deleted — consumers must explicitly acknowledge, exactly the loop that
makes SQS-based synchronization the slowest strategy in Fig. 6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.simulation.kernel import Kernel, current_thread
from repro.simulation.primitives import Event


@dataclass
class Message:
    body: Any
    receipt: str
    enqueued_at: float
    #: invisible until this time (0 = visible now)
    invisible_until: float = 0.0
    receive_count: int = 0


@dataclass
class _Queue:
    name: str
    visibility_timeout: float
    messages: list[Message] = field(default_factory=list)
    #: Long-poll waiters; set from kernel context on arrival.
    waiters: list[Event] = field(default_factory=list)


class QueueService:
    """A named-queue service with SQS semantics and latencies."""

    def __init__(self, kernel: Kernel, config: Config = DEFAULT_CONFIG,
                 name: str = "sqs"):
        self.kernel = kernel
        self.config = config
        self.name = name
        self._queues: dict[str, _Queue] = {}
        self._rng = kernel.rng.stream(f"storage.{name}")
        self._receipts = itertools.count()
        self.send_count = 0
        self.receive_count = 0

    # -- management -----------------------------------------------------------

    def create_queue(self, name: str, visibility_timeout: float = 30.0) -> None:
        if name in self._queues:
            raise ValueError(f"queue {name!r} already exists")
        self._queues[name] = _Queue(name, visibility_timeout)

    def _queue(self, name: str) -> _Queue:
        queue = self._queues.get(name)
        if queue is None:
            raise NoSuchKeyError(f"{self.name}: no such queue {name!r}")
        return queue

    # -- data path ----------------------------------------------------------------

    def send(self, queue_name: str, body: Any) -> None:
        """Send a message (charges SQS send latency)."""
        with self.kernel.tracer.span(
                f"{self.name}.send", kind="producer", endpoint=self.name,
                attributes={"queue": queue_name}):
            delay = self.config.storage.sqs_send.sample(self._rng)
            current_thread().sleep(delay)
            self.deliver(queue_name, body)

    def deliver(self, queue_name: str, body: Any) -> None:
        """Enqueue without caller-side latency (service-side fan-in).

        The entry point for other *services* handing a message to the
        queue — SNS fan-out, the FaaS platform's dead-letter delivery —
        where the producer's request latency was already charged
        elsewhere.  The message only becomes receivable after the
        delivery lag — SQS's heavy-tailed propagation across its
        storage hosts.
        """
        queue = self._queue(queue_name)
        receipt = f"r-{next(self._receipts)}"
        lag = self.config.storage.sqs_delivery_lag.sample(self._rng)
        queue.messages.append(
            Message(body=body, receipt=receipt,
                    enqueued_at=self.kernel.now,
                    invisible_until=self.kernel.now + lag))
        self.send_count += 1
        self.kernel.call_later(lag, lambda: self._wake_waiters(queue))

    #: Backwards-compatible alias (pre-1.1 internal name).
    _deliver = deliver

    def _wake_waiters(self, queue: _Queue) -> None:
        for waiter in queue.waiters:
            waiter.set()
        queue.waiters.clear()

    def receive(self, queue_name: str, max_messages: int = 1,
                wait: float = 0.0) -> list[Message]:
        """Poll for messages (charges receive latency).

        With ``wait > 0`` this is a long poll: the call returns as soon
        as a message arrives, or after ``wait`` seconds with an empty
        list.  Returned messages become invisible for the queue's
        visibility timeout; call :meth:`delete` to acknowledge.
        """
        queue = self._queue(queue_name)
        with self.kernel.tracer.span(
                f"{self.name}.receive", kind="consumer", endpoint=self.name,
                attributes={"queue": queue_name}) as span:
            delay = self.config.storage.sqs_receive.sample(self._rng)
            current_thread().sleep(delay)
            self.receive_count += 1
            deadline = self.kernel.now + wait
            while True:
                batch = self._take_visible(queue, max_messages)
                if batch or self.kernel.now >= deadline:
                    span.set("messages", len(batch))
                    return batch
                waiter = Event(self.kernel)
                queue.waiters.append(waiter)
                waiter.wait(timeout=deadline - self.kernel.now)
                if waiter in queue.waiters:
                    queue.waiters.remove(waiter)

    def _take_visible(self, queue: _Queue, limit: int) -> list[Message]:
        now = self.kernel.now
        batch: list[Message] = []
        for message in queue.messages:
            if message.invisible_until <= now:
                message.invisible_until = now + queue.visibility_timeout
                message.receive_count += 1
                batch.append(message)
                if len(batch) == limit:
                    break
        return batch

    def delete(self, queue_name: str, receipt: str) -> None:
        """Acknowledge (remove) a received message."""
        with self.kernel.tracer.span(
                f"{self.name}.delete", kind="client", endpoint=self.name,
                attributes={"queue": queue_name}):
            delay = self.config.storage.sqs_send.sample(self._rng)
            current_thread().sleep(delay)
            queue = self._queue(queue_name)
            queue.messages = [m for m in queue.messages
                              if m.receipt != receipt]

    def delete_batch(self, queue_name: str, receipts: list[str]) -> None:
        """DeleteMessageBatch: up to 10 acknowledgements per request."""
        queue = self._queue(queue_name)
        for start in range(0, len(receipts), 10):
            chunk = set(receipts[start:start + 10])
            delay = self.config.storage.sqs_send.sample(self._rng)
            current_thread().sleep(delay)
            queue.messages = [m for m in queue.messages
                              if m.receipt not in chunk]

    def approximate_depth(self, queue_name: str) -> int:
        """Visible-message count (no latency; monitoring API)."""
        now = self.kernel.now
        return sum(1 for m in self._queue(queue_name).messages
                   if m.invisible_until <= now)
