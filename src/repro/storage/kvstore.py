"""A Redis-like in-memory key-value store with server-side scripts.

Faithfully models the two properties that drive the paper's Fig. 2a
crossover and the "Crucial + Redis" line of Fig. 5:

* the server is **single-threaded** — every command, including Lua
  scripts, runs to completion on one event loop, so concurrent complex
  operations serialize (``workers=1`` per shard);
* the optimized C core gives a very low fixed per-command cost, so for
  trivial commands Redis beats the JVM-based DSO layer.

Scripts are the stand-in for Lua: a registered Python function that
runs against the shard's data dictionary, with an explicit CPU-cost
model (scripts are charged ``script_overhead + cost``), because the
*timing* of the computation — not its result — is what the simulation
must get right.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.cluster.node import Node
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.net.network import Network
from repro.rpc.server import RpcServer
from repro.simulation.kernel import Kernel


@dataclass(frozen=True)
class Script:
    """A server-side script: ``fn(data, key, *args) -> result``.

    ``cost(*args)`` returns the CPU seconds the script burns on the
    event loop (beyond the fixed script overhead).
    """

    fn: Callable[..., Any]
    cost: Callable[..., float] = staticmethod(lambda *args: 0.0)


class _Shard:
    """One single-threaded Redis server process."""

    def __init__(self, kernel: Kernel, network: Network, name: str,
                 config: Config):
        self.config = config
        self.node = Node(kernel, network, name, workers=1)
        self.data: dict[str, Any] = {}
        self.server = RpcServer(self.node)
        self.server.register("get", self._get)
        self.server.register("set", self._set)
        self.server.register("incrby", self._incrby)
        self.server.register("script", self._script)
        self._scripts: dict[str, Script] = {}

    def _get(self, call, key):
        call.service(self.config.redis.get_service)
        if key not in self.data:
            raise NoSuchKeyError(f"redis: no such key {key!r}")
        return self.data[key]

    def _set(self, call, key, value):
        call.service(self.config.redis.put_service)
        self.data[key] = value

    def _incrby(self, call, key, amount):
        call.service(self.config.redis.put_service)
        value = self.data.get(key, 0) + amount
        self.data[key] = value
        return value

    def _script(self, call, name, key, args):
        script = self._scripts.get(name)
        if script is None:
            raise NoSuchKeyError(f"redis: script {name!r} not loaded")
        call.service(self.config.redis.script_overhead
                     + script.cost(*args))
        return script.fn(self.data, key, *args)


class RedisCluster:
    """A client-sharded Redis deployment (N independent servers)."""

    def __init__(self, kernel: Kernel, network: Network, shards: int = 1,
                 config: Config = DEFAULT_CONFIG, name: str = "redis"):
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        self.kernel = kernel
        self.network = network
        self.config = config
        self.name = name
        self.shards = [
            _Shard(kernel, network, f"{name}-{i}", config)
            for i in range(shards)
        ]
        latency = config.redis.client_server
        for shard in self.shards:
            for other in self.shards:
                if shard is not other:
                    network.set_link(shard.node.name, other.node.name, latency)

    def _shard(self, key: str) -> _Shard:
        digest = hashlib.blake2b(repr(key).encode(), digest_size=4).digest()
        return self.shards[int.from_bytes(digest, "big") % len(self.shards)]

    def _connect(self, client: str, shard: _Shard) -> None:
        self.network.ensure_endpoint(client)
        latency = self.config.redis.client_server
        if self.network.link(client, shard.node.name) is not latency:
            self.network.set_link(client, shard.node.name, latency)

    # -- client API ------------------------------------------------------------

    def get(self, client: str, key: str) -> Any:
        shard = self._shard(key)
        self._connect(client, shard)
        return shard.server.call(client, "get", key)

    def set(self, client: str, key: str, value: Any) -> None:
        shard = self._shard(key)
        self._connect(client, shard)
        shard.server.call(client, "set", key, value)

    def incrby(self, client: str, key: str, amount: int = 1) -> int:
        shard = self._shard(key)
        self._connect(client, shard)
        return shard.server.call(client, "incrby", key, amount)

    def register_script(self, name: str, script: Script) -> None:
        """Load a script on every shard (SCRIPT LOAD)."""
        for shard in self.shards:
            shard._scripts[name] = script

    def eval_script(self, client: str, name: str, key: str, *args) -> Any:
        """EVALSHA: run a loaded script against ``key``'s shard."""
        shard = self._shard(key)
        self._connect(client, shard)
        return shard.server.call(client, "script", name, key, args)
