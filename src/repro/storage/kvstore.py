"""A Redis-like in-memory key-value store with server-side scripts.

Faithfully models the two properties that drive the paper's Fig. 2a
crossover and the "Crucial + Redis" line of Fig. 5:

* the server is **single-threaded** — every command, including Lua
  scripts, runs to completion on one event loop, so concurrent complex
  operations serialize (``workers=1`` per shard);
* the optimized C core gives a very low fixed per-command cost, so for
  trivial commands Redis beats the JVM-based DSO layer.

Scripts are the stand-in for Lua: a registered Python function that
runs against the shard's data dictionary, with an explicit CPU-cost
model (scripts are charged ``script_overhead + cost``), because the
*timing* of the computation — not its result — is what the simulation
must get right.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.cluster.node import Node
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.metrics.cost import CostLedger
from repro.net.network import Network, payload_size
from repro.rpc.server import RpcServer
from repro.simulation.kernel import Kernel
from repro.storage.backend import BackendStats, memory_profile


@dataclass(frozen=True)
class Script:
    """A server-side script: ``fn(data, key, *args) -> result``.

    ``cost(*args)`` returns the CPU seconds the script burns on the
    event loop (beyond the fixed script overhead).
    """

    fn: Callable[..., Any]
    cost: Callable[..., float] = staticmethod(lambda *args: 0.0)


class _Shard:
    """One single-threaded Redis server process."""

    def __init__(self, kernel: Kernel, network: Network, name: str,
                 config: Config):
        self.config = config
        self.node = Node(kernel, network, name, workers=1)
        self.data: dict[str, Any] = {}
        self.server = RpcServer(self.node)
        self.server.register("get", self._get)
        self.server.register("set", self._set)
        self.server.register("del", self._del)
        self.server.register("exists", self._exists)
        self.server.register("keys", self._keys)
        self.server.register("incrby", self._incrby)
        self.server.register("script", self._script)
        self._scripts: dict[str, Script] = {}

    def _get(self, call, key):
        call.service(self.config.redis.get_service)
        if key not in self.data:
            raise NoSuchKeyError(f"redis: no such key {key!r}")
        return self.data[key]

    def _set(self, call, key, value):
        call.service(self.config.redis.put_service)
        self.data[key] = value

    def _del(self, call, key):
        call.service(self.config.redis.put_service)
        self.data.pop(key, None)

    def _exists(self, call, key):
        call.service(self.config.redis.get_service)
        return key in self.data

    def _keys(self, call, prefix):
        call.service(self.config.redis.get_service)
        return [key for key in self.data if key.startswith(prefix)]

    def _incrby(self, call, key, amount):
        call.service(self.config.redis.put_service)
        value = self.data.get(key, 0) + amount
        self.data[key] = value
        return value

    def _script(self, call, name, key, args):
        script = self._scripts.get(name)
        if script is None:
            raise NoSuchKeyError(f"redis: script {name!r} not loaded")
        call.service(self.config.redis.script_overhead
                     + script.cost(*args))
        return script.fn(self.data, key, *args)


class RedisCluster:
    """A client-sharded Redis deployment (N independent servers)."""

    def __init__(self, kernel: Kernel, network: Network, shards: int = 1,
                 config: Config = DEFAULT_CONFIG, name: str = "redis"):
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        self.kernel = kernel
        self.network = network
        self.config = config
        self.name = name
        self.shards = [
            _Shard(kernel, network, f"{name}-{i}", config)
            for i in range(shards)
        ]
        latency = config.redis.client_server
        for shard in self.shards:
            for other in self.shards:
                if shard is not other:
                    network.set_link(shard.node.name, other.node.name, latency)

    def _shard(self, key: str) -> _Shard:
        digest = hashlib.blake2b(repr(key).encode(), digest_size=4).digest()
        return self.shards[int.from_bytes(digest, "big") % len(self.shards)]

    def _connect(self, client: str, shard: _Shard) -> None:
        self.network.ensure_endpoint(client)
        latency = self.config.redis.client_server
        if self.network.link(client, shard.node.name) is not latency:
            self.network.set_link(client, shard.node.name, latency)

    # -- client API ------------------------------------------------------------

    def get(self, client: str, key: str) -> Any:
        shard = self._shard(key)
        self._connect(client, shard)
        return shard.server.call(client, "get", key)

    def set(self, client: str, key: str, value: Any) -> None:
        shard = self._shard(key)
        self._connect(client, shard)
        shard.server.call(client, "set", key, value)

    def incrby(self, client: str, key: str, amount: int = 1) -> int:
        shard = self._shard(key)
        self._connect(client, shard)
        return shard.server.call(client, "incrby", key, amount)

    def register_script(self, name: str, script: Script) -> None:
        """Load a script on every shard (SCRIPT LOAD)."""
        for shard in self.shards:
            shard._scripts[name] = script

    def eval_script(self, client: str, name: str, key: str, *args) -> Any:
        """EVALSHA: run a loaded script against ``key``'s shard."""
        shard = self._shard(key)
        self._connect(client, shard)
        return shard.server.call(client, "script", name, key, args)

    def delete(self, client: str, key: str) -> None:
        """DEL (idempotent)."""
        shard = self._shard(key)
        self._connect(client, shard)
        shard.server.call(client, "del", key)

    def exists(self, client: str, key: str) -> bool:
        """EXISTS."""
        shard = self._shard(key)
        self._connect(client, shard)
        return shard.server.call(client, "exists", key)

    def keys(self, client: str, prefix: str = "") -> list[str]:
        """KEYS ``prefix*``, fanned out to every shard."""
        found: list[str] = []
        for shard in self.shards:
            self._connect(client, shard)
            found.extend(shard.server.call(client, "keys", prefix))
        return sorted(found)

    def seed(self, key: str, value: Any) -> None:
        """Place ``key`` on its shard without charging the data path
        (pre-existing data; host-callable)."""
        self._shard(key).data[key] = value

    def backend(self, client: str = "client",
                ledger: CostLedger | None = None) -> "RedisBackend":
        """A :class:`repro.storage.backend.StorageBackend` view of
        this deployment for one client endpoint."""
        return RedisBackend(self, client=client, ledger=ledger)


class RedisBackend:
    """Protocol adapter: a RedisCluster as a priced in-memory tier.

    Requests delegate to the sharded RPC path (latency charged by the
    shards, never twice); the view adds per-request stats, RAM rent at
    the in-memory tier rate, and nominal-size tracking.
    """

    def __init__(self, cluster: RedisCluster, client: str = "client",
                 ledger: CostLedger | None = None):
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.client = client
        self.name = cluster.name
        self.profile = memory_profile(cluster.config, cluster.name)
        self.profile.validate()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.ledger.attach(self)
        self.stats = BackendStats()
        self._nbytes: dict[str, int] = {}
        self._resting_bytes = 0
        self._last_settle = self.kernel.now

    # -- billing ------------------------------------------------------------

    def settle(self) -> None:
        now = self.kernel.now
        elapsed = now - self._last_settle
        if elapsed > 0 and self._resting_bytes > 0:
            byte_seconds = self._resting_bytes * elapsed
            self.ledger.occupancy(
                self.name, self.profile.tier, byte_seconds,
                self.profile.storage_dollars(byte_seconds))
        self._last_settle = now

    def _charge(self, dollars: float, count_attr: str) -> None:
        setattr(self.stats, count_attr, getattr(self.stats, count_attr) + 1)
        self.stats.request_dollars += dollars
        self.ledger.request(self.name, self.profile.tier, dollars)

    def _account(self, key: str, nbytes: int | None) -> None:
        self.settle()
        self._resting_bytes -= self._nbytes.pop(key, 0)
        if nbytes is not None:
            self._nbytes[key] = nbytes
            self._resting_bytes += nbytes

    # -- data path ----------------------------------------------------------

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        if nbytes is None:
            nbytes = payload_size(value)
        self.cluster.set(self.client, key, value)
        self._account(key, nbytes)
        self._charge(self.profile.put_request_dollars, "puts")
        self.stats.bytes_written += nbytes

    def get(self, key: str) -> Any:
        value = self.cluster.get(self.client, key)
        self._charge(self.profile.get_request_dollars, "gets")
        self.stats.bytes_read += self._nbytes.get(key, 0)
        return value

    def delete(self, key: str) -> None:
        self.cluster.delete(self.client, key)
        self._account(key, None)
        self._charge(self.profile.put_request_dollars, "deletes")

    def list_prefix(self, prefix: str) -> list[str]:
        found = self.cluster.keys(self.client, prefix)
        self._charge(self.profile.get_request_dollars, "lists")
        return found

    def exists(self, key: str) -> bool:
        found = self.cluster.exists(self.client, key)
        self._charge(self.profile.get_request_dollars, "heads")
        return found

    # -- free paths ---------------------------------------------------------

    def seed(self, key: str, value: Any, nbytes: int | None = None) -> None:
        if nbytes is None:
            nbytes = payload_size(value)
        self.cluster.seed(key, value)
        self._account(key, nbytes)

    def size(self) -> int:
        return len(self._nbytes)

    def stored_bytes(self) -> int:
        return self._resting_bytes
