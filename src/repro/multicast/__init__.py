"""Total-order multicast and view synchrony (the JGroups role)."""

from repro.multicast.skeen import SkeenMulticast
from repro.multicast.view_synchrony import ViewSynchronousGroup

__all__ = ["SkeenMulticast", "ViewSynchronousGroup"]
