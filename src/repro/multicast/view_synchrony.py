"""View-synchronous total-order multicast.

Section 4.1: "To handle membership changes, the DSO layer relies on a
variation of view synchrony... In a given view, for some object x, the
operations accessing x are sent using total order multicast."

Skeen's algorithm blocks if a member dies before proposing a timestamp.
View synchrony repairs this: when the membership service installs a new
view, every in-flight multicast is *flushed* — proposals awaited only
from surviving members — and subsequent messages use the new view's
membership.  Views are installed in the same total order at every
member, and no message delivery straddles a view boundary.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.cluster.membership import MembershipService, View
from repro.multicast.skeen import SkeenMulticast
from repro.net.network import Network
from repro.simulation.kernel import Kernel

DeliverFn = Callable[[str, Any], None]


class ViewSynchronousGroup:
    """Totally-ordered multicast that survives membership changes."""

    def __init__(self, kernel: Kernel, network: Network,
                 membership: MembershipService, deliver: DeliverFn,
                 on_view: Callable[[View], None] | None = None):
        self.kernel = kernel
        self.network = network
        self.membership = membership
        self.deliver = deliver
        self.on_view = on_view
        self._skeen: SkeenMulticast | None = None
        self._view: View | None = None
        membership.subscribe(self._install_view)
        if membership.view.members:
            self._install_view(membership.view)

    @property
    def view(self) -> View | None:
        return self._view

    def multicast(self, sender: str, payload: Any,
                  on_delivered: Callable[[str], None] | None = None) -> Hashable:
        if self._skeen is None:
            raise RuntimeError("no view installed yet")
        return self._skeen.multicast(sender, payload, on_delivered)

    # -- view installation -------------------------------------------------------

    def _install_view(self, view: View) -> None:
        previous = self._skeen
        self._view = view
        if view.members:
            self._skeen = SkeenMulticast(
                self.kernel, self.network, list(view.members), self.deliver)
        else:
            self._skeen = None
        if previous is not None:
            self._flush(previous, set(view.members))
        if self.on_view is not None:
            self.on_view(view)

    def _flush(self, skeen: SkeenMulticast, survivors: set[str]) -> None:
        """Reconcile unstable messages before the new view.

        View synchrony's flush protocol: survivors exchange every
        *unstable* (in-flight) message, so each one either reaches all
        of them or none.  Concretely, for each in-flight message we

        1. retransmit it to any survivor that never saw the REQUEST
           (covers requests dropped at, or commits stranded in, the
           crashed member — including a crashed *sender*),
        2. recover proposals directly from survivor state (covers
           PROPOSE replies lost with the crash),
        3. assign the final timestamp over survivors only and commit
           at every survivor, bypassing the dead coordinator.

        Departed members' pending queues are dropped (their deliveries
        are moot).
        """
        from repro.multicast.skeen import _Pending

        expected = [m for m in skeen.members if m in survivors]
        skeen.expected = set(expected)
        for member in skeen.members:
            if member not in survivors:
                skeen._states[member].pending.clear()
        for msg_id, flight in list(skeen._in_flight.items()):
            for member in expected:
                state = skeen._states[member]
                if msg_id in state.delivered_ids:
                    continue
                pending = state.pending.get(msg_id)
                if pending is None:
                    # Flush retransmission: propose locally now.
                    state.clock += 1
                    pending = _Pending(
                        payload=flight["payload"],
                        sender=flight["sender"], seq=flight["seq"],
                        timestamp=state.clock)
                    state.pending[msg_id] = pending
                flight["proposals"][member] = max(
                    flight["proposals"].get(member, 0),
                    pending.timestamp)
            for member in list(flight["proposals"]):
                if member not in survivors:
                    del flight["proposals"][member]
            if flight.get("committed"):
                final = flight["final"]
            else:
                live = {m: ts for m, ts in flight["proposals"].items()
                        if m in skeen.expected}
                if not live:
                    continue
                final = max(live.values())
                flight["committed"] = True
                flight["final"] = final
            for member in expected:
                skeen._on_commit(member, msg_id, final)
        for member in expected:
            skeen._try_deliver(member)
