"""Skeen's total-order multicast (Birman & Joseph '87 formulation).

This is the algorithm Infinispan/JGroups use for total-order delivery
(Section 5: "The current implementation uses Skeen's algorithm").

Protocol for a message ``m`` from sender ``s`` to group ``G``:

1. ``s`` sends ``REQUEST(m)`` to every member of ``G``.
2. Each member ``i`` increments its logical clock, stores ``m`` as
   *pending* with proposed timestamp ``clock_i``, and replies
   ``PROPOSE(m, clock_i)``.
3. When ``s`` has every proposal it assigns the *final* timestamp
   ``max_i(clock_i)`` and sends ``COMMIT(m, final)``.
4. On commit, members mark ``m`` deliverable with its final timestamp
   and deliver pending messages in timestamp order — a deliverable
   message is delivered once no pending (uncommitted) message could
   receive a smaller final timestamp.

Ties are broken by ``(timestamp, sender, sequence)``, which is a total
order, so all members deliver identical sequences — the property the
test suite checks with randomized delays (hypothesis).

Messages travel through :class:`~repro.net.network.Network` timers;
delivery callbacks run in kernel context and must not block.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.net.network import Network
from repro.simulation.kernel import Kernel

DeliverFn = Callable[[str, Any], None]  # (member, payload)


@dataclass
class _Pending:
    payload: Any
    sender: str
    seq: int
    timestamp: int
    committed: bool = False

    def order_key(self) -> tuple[int, str, int]:
        return (self.timestamp, self.sender, self.seq)


@dataclass
class _MemberState:
    clock: int = 0
    pending: dict[Hashable, _Pending] = field(default_factory=dict)
    delivered: list[Hashable] = field(default_factory=list)
    delivered_ids: set = field(default_factory=set)


class SkeenMulticast:
    """A closed group of members exchanging totally-ordered messages."""

    def __init__(self, kernel: Kernel, network: Network,
                 members: list[str], deliver: DeliverFn):
        if not members:
            raise ValueError("a multicast group needs at least one member")
        self.kernel = kernel
        self.network = network
        self.members = list(members)
        #: Members whose proposals are required before commit; view
        #: synchrony shrinks this set when a member is expelled.
        self.expected: set[str] = set(members)
        self.deliver = deliver
        self._states = {m: _MemberState() for m in members}
        self._seq = itertools.count()
        #: msg_id -> {"proposals": {member: ts}, "payload", "sender",
        #:            "seq", "on_delivered": {member: cb}}
        self._in_flight: dict[Hashable, dict] = {}
        #: Per-link earliest next delivery time; models the FIFO (TCP)
        #: channels JGroups runs over, without which Skeen's algorithm
        #: would not preserve per-sender order.
        self._link_clock: dict[tuple[str, str], float] = {}

    # -- API -------------------------------------------------------------------

    def multicast(self, sender: str, payload: Any,
                  on_delivered: Callable[[str], None] | None = None) -> Hashable:
        """Send ``payload`` to the whole group in total order.

        ``on_delivered(member)`` fires (in kernel context) each time a
        member delivers the message.  Returns the message id.
        """
        seq = next(self._seq)
        msg_id = (sender, seq)
        # One span covers the whole protocol round: request fan-out
        # through the last expected member's delivery.  It is not
        # activated (the protocol advances via kernel timers, not the
        # calling thread) and is closed by ``_try_deliver``.
        span = self.kernel.tracer.start_span(
            "multicast.total_order", kind="producer", endpoint=sender,
            attributes={"members": len(self.members)}, activate=False)
        self._in_flight[msg_id] = {
            "proposals": {},
            "payload": payload,
            "sender": sender,
            "seq": seq,
            "on_delivered": on_delivered,
            "span": span,
            "deliveries": 0,
        }
        for member in self.members:
            self._send(sender, member,
                       lambda m=member: self._on_request(m, msg_id))
        return msg_id

    def _send(self, src: str, dst: str, action: Callable[[], None]) -> None:
        """Deliver ``action`` at ``dst`` after link latency.

        Messages to/from crashed or partitioned endpoints are silently
        dropped (fail-stop model); view synchrony unblocks the stalled
        multicast when the membership change is installed.
        """
        if not self.network.reachable(src, dst):
            return
        arrival = self.kernel.now + self.network.delay(src, dst)
        link = (src, dst)
        arrival = max(arrival, self._link_clock.get(link, 0.0))
        self._link_clock[link] = arrival
        epoch = self.network.endpoint(dst).epoch

        def deliver_if_alive():
            if self.network.reachable(src, dst) and \
                    self.network.endpoint(dst).epoch == epoch:
                action()

        self.kernel.call_at(arrival, deliver_if_alive)

    # -- protocol steps ----------------------------------------------------------

    def _on_request(self, member: str, msg_id: Hashable) -> None:
        flight = self._in_flight.get(msg_id)
        if flight is None:
            return
        state = self._states[member]
        if msg_id in state.pending or msg_id in state.delivered_ids:
            return  # duplicate (e.g. flush retransmitted it already)
        state.clock += 1
        state.pending[msg_id] = _Pending(
            payload=flight["payload"], sender=flight["sender"],
            seq=flight["seq"], timestamp=state.clock)
        self._send(member, flight["sender"],
                   lambda m=member, ts=state.clock:
                   self._on_propose(msg_id, m, ts))

    def _on_propose(self, msg_id: Hashable, member: str, timestamp: int) -> None:
        flight = self._in_flight.get(msg_id)
        if flight is None:
            return
        flight["proposals"][member] = timestamp
        self._maybe_commit(msg_id)

    def _maybe_commit(self, msg_id: Hashable) -> None:
        flight = self._in_flight.get(msg_id)
        if flight is None or flight.get("committed"):
            return
        proposals = flight["proposals"]
        if not all(m in proposals for m in self.expected):
            return
        live = {m: ts for m, ts in proposals.items() if m in self.expected}
        if not live:
            return
        flight["committed"] = True
        final = max(live.values())
        flight["final"] = final
        for target in self.members:
            self._send(flight["sender"], target,
                       lambda m=target: self._on_commit(m, msg_id, final))

    def _on_commit(self, member: str, msg_id: Hashable, final: int) -> None:
        state = self._states[member]
        pending = state.pending.get(msg_id)
        if pending is None:
            return
        pending.timestamp = final
        pending.committed = True
        state.clock = max(state.clock, final)
        self._try_deliver(member)

    def _try_deliver(self, member: str) -> None:
        state = self._states[member]
        while state.pending:
            head = min(state.pending.values(), key=_Pending.order_key)
            if not head.committed:
                return
            # Any uncommitted message's final timestamp will be >= its
            # proposal; head is safe only if it precedes every proposal.
            msg_id = next(k for k, v in state.pending.items() if v is head)
            del state.pending[msg_id]
            state.delivered.append(msg_id)
            state.delivered_ids.add(msg_id)
            self.deliver(member, head.payload)
            flight = self._in_flight.get(msg_id)
            if flight is None:
                continue
            if flight["on_delivered"] is not None:
                flight["on_delivered"](member)
            flight["deliveries"] += 1
            if flight["deliveries"] >= len(self.expected):
                self.kernel.tracer.end_span(flight["span"])

    # -- inspection ---------------------------------------------------------------

    def delivered_sequence(self, member: str) -> list[Hashable]:
        return list(self._states[member].delivered)
