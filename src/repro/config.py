"""Calibrated constants for the simulated cloud.

Every number here is either taken directly from the paper (Table 2
latencies, AWS prices quoted in Section 6.2.3) or back-derived from a
reported result (compute-cost factors from Figures 4 and 5, invocation
dispatch cost from the Monte-Carlo speedup of Figure 2b).  Provenance
is noted next to each value.  Benchmarks and tests must read these
constants rather than hard-coding numbers, so a re-calibration sweeps
the whole reproduction consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.latency import LatencyModel

MICROS = 1e-6
MILLIS = 1e-3

# ---------------------------------------------------------------------------
# Storage-service latencies (Table 2, 1 KB payloads, us-east-1 VPC)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StorageLatencies:
    """Latency models for the storage substrates we compare."""

    # S3: 34,868 us PUT / 23,072 us GET; heavy right tail drives the
    # variability of the S3-polling bars in Fig. 6.
    s3_put: LatencyModel = LatencyModel(34_868 * MICROS, sigma=0.30,
                                        bandwidth=85e6)
    s3_get: LatencyModel = LatencyModel(23_072 * MICROS, sigma=0.30,
                                        bandwidth=85e6)
    #: Extra delay before a freshly PUT key is visible to LIST/polling
    #: readers (S3 was eventually consistent in 2019; Section 6.3.1).
    s3_visibility_lag: float = 80 * MILLIS

    # Redis / Infinispan latencies are *decomposed* into network +
    # service terms in RedisTimings / GridTimings below, so closed-loop
    # throughput (Fig. 2a) and sequential latency (Table 2) come from
    # one consistent model.

    # SQS/SNS: "hundreds of milliseconds" (Section 1); send is tens of
    # ms, and delivery to a polling consumer adds the poll interval.
    sqs_send: LatencyModel = LatencyModel(15 * MILLIS, sigma=0.25)
    sqs_receive: LatencyModel = LatencyModel(15 * MILLIS, sigma=0.25)
    #: Lag until a sent message is returnable by a receive.  SQS
    #: samples a subset of its hosts per receive, so end-to-end
    #: delivery shows a heavy tail of hundreds of milliseconds — the
    #: reason SQS-based synchronization is the slowest in Fig. 6.
    sqs_delivery_lag: LatencyModel = LatencyModel(250 * MILLIS, sigma=0.5)
    sns_publish: LatencyModel = LatencyModel(30 * MILLIS, sigma=0.30)


# ---------------------------------------------------------------------------
# DSO layer (Table 2 rows "Crucial" / "Crucial rf=2")
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DsoTimings:
    """Decomposition of the ~230 us Crucial op into network + service.

    One-way client<->server latency of 100 us plus ~30 us of server
    work reproduces Table 2's 229/231 us round trip; with rf=2 the SMR
    path adds two inter-replica hops of 65 us (the total-order round)
    plus 150 us of replica-side work, doubling latency to ~505-512 us,
    as reported.

    Full *method invocations* (Fig. 2a) additionally pay reflection /
    AspectJ-proxy / locking overhead at the server
    (``method_call_overhead``), back-derived from Fig. 2a's "Redis is
    50% faster for base operations" with 200 closed-loop threads.
    """

    client_server: LatencyModel = LatencyModel(100 * MICROS, sigma=0.05,
                                               bandwidth=1.2e9)
    replica_replica: LatencyModel = LatencyModel(65 * MICROS, sigma=0.05,
                                                 bandwidth=1.2e9)
    #: Server work for a raw 1KB GET / PUT (Table 2 path).
    get_service: float = 29 * MICROS
    put_service: float = 31 * MICROS
    #: Per-method-invocation server overhead (dispatch, reflection,
    #: per-object lock) for shipped method calls.
    method_call_overhead: float = 95 * MICROS
    #: Extra per-replica work to order an op with SMR (Skeen rounds,
    #: interceptor stack).
    smr_replica_overhead: float = 150 * MICROS
    #: One arithmetic micro-op of the Fig. 2a workload (JVM-jitted).
    simple_op_cost: float = 0.05 * MICROS
    #: Worker threads per DSO node (r5.2xlarge has 8 vCPUs).
    node_workers: int = 8
    #: Time to detect a crashed peer (view-synchrony failure detector).
    failure_detection: float = 4.0
    #: Extra budget clients keep retrying transient failures beyond
    #: detection + view installation: covers retry backoff quantisation
    #: and the rebalancer re-homing the object after a view change.
    retry_grace: float = 8.0
    #: Client retry schedule for transient DSO failures: exponential
    #: backoff starting at ``retry_backoff``, multiplied by
    #: ``retry_backoff_multiplier`` per attempt, capped at
    #: ``retry_backoff_max``, with up to ``retry_jitter`` (fraction)
    #: of deterministic seeded jitter to de-synchronize retry storms.
    retry_backoff: float = 0.25
    retry_backoff_multiplier: float = 2.0
    retry_backoff_max: float = 4.0
    retry_jitter: float = 0.1
    #: Per-container cap on the exactly-once session table (distinct
    #: client sessions remembered for duplicate suppression).  When
    #: exceeded, the least-recently-active fully-acknowledged session
    #: is evicted first.
    session_table_max: int = 4096
    #: Validity window of a client read lease (see repro.dso.cache).
    #: A mutating invocation that cannot reach a lease holder must
    #: wait out the remainder of this window before acknowledging, so
    #: the TTL bounds write stalls under partitions; it also bounds
    #: how long a cache entry can survive without re-contacting the
    #: primary.  Leases only exist when the read cache is enabled
    #: (``DsoLayer(read_cache=True)``); the default deployment ships
    #: every read, matching the paper and the Table 2 calibration.
    lease_ttl: float = 5.0
    #: Local service time of a cache hit (lookup + deserialization at
    #: the function host — the "hundreds of microseconds down to
    #: microseconds" step Cloudburst reports for host-local caches).
    cache_hit_overhead: float = 2 * MICROS
    #: Per-endpoint cap on cached objects (LRU beyond this).
    cache_max_objects: int = 256
    #: Client-side pipelining (``DsoLayer.invoke_async``): a flushed
    #: batch carries up to ``pipeline_max_batch`` ops, and a partial
    #: batch waits at most ``pipeline_flush_window`` of virtual time
    #: for more ops before shipping.  The window is sized to one
    #: client<->server round trip: pipelined submitters refill the
    #: queue faster than that, and latency-sensitive callers flush
    #: explicitly (``future.result()`` flushes immediately).
    pipeline_max_batch: int = 32
    pipeline_flush_window: float = 200 * MICROS
    #: Committed versions a transactional cell (repro.dso.txn.TxnCell)
    #: retains per key.  A reader needing atomic visibility can fall
    #: back to any retained version; deeper histories tolerate longer
    #: read/write skew before a reader must abort, at the price of
    #: memory.  AFT similarly bounds its per-key version history.
    txn_history: int = 8
    #: Per-object state-transfer cost during rebalancing (includes the
    #: deliberate throttling real grids apply so rebalance does not
    #: starve foreground traffic), plus a fixed view-installation
    #: pause.  Together these stretch the Fig. 8 recovery over tens of
    #: seconds, as the paper observes.
    transfer_per_object: float = 250 * MILLIS
    view_change_pause: float = 250 * MILLIS


@dataclass(frozen=True)
class GridTimings:
    """The Infinispan key-value path (Table 2 rows "Infinispan").

    Same network as the DSO layer (it *is* the same grid) but without
    the object-layer dispatch: 100 us hops + 7/28 us service give the
    207/228 us GET/PUT of Table 2.
    """

    client_server: LatencyModel = LatencyModel(100 * MICROS, sigma=0.05,
                                               bandwidth=1.2e9)
    get_service: float = 7 * MICROS
    put_service: float = 28 * MICROS
    node_workers: int = 8


# ---------------------------------------------------------------------------
# Redis-as-DSO baseline (Fig. 2a / Fig. 5 "Crucial + Redis")
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RedisTimings:
    """The Redis server is single-threaded; scripts run sequentially.

    Redis's optimized C core makes its per-op fixed cost far lower than
    the DSO's JVM dispatch path ("Redis is 50% faster for base
    operations") but the single event loop serializes complex scripted
    operations, producing the ~5x crossover of Fig. 2a.  110 us hops +
    9/12 us service reproduce Table 2's 229/232 us GET/PUT.
    """

    client_server: LatencyModel = LatencyModel(110 * MICROS, sigma=0.05,
                                               bandwidth=1.2e9)
    get_service: float = 9 * MICROS
    put_service: float = 12 * MICROS
    #: Per-script fixed overhead (Lua VM entry).
    script_overhead: float = 8 * MICROS
    #: One arithmetic op inside a Lua script (interpreted).
    simple_op_cost: float = 0.04 * MICROS
    #: Marshalling one numeric element through a Lua script (the
    #: dominant cost of the "Crucial + Redis" k-means variant: every
    #: centroid coordinate crosses the Lua boundary on one thread).
    lua_per_element: float = 2.0 * MICROS


# ---------------------------------------------------------------------------
# FaaS platform (AWS Lambda, Section 2.1 limits)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaasLimits:
    max_memory_mb: int = 3008          # cap at the time of writing
    max_duration: float = 15 * 60.0    # 15-minute invocation limit
    #: Memory that buys one full vCPU (footnote 7).
    full_vcpu_memory_mb: int = 1792
    #: Account-level concurrent-execution limit.
    max_concurrency: int = 3000


@dataclass(frozen=True)
class FaasTimings:
    #: Client-side dispatch per synchronous invocation (SDK call,
    #: payload marshalling).  Back-derived from Fig. 2b: a ~4.5 ms
    #: serial dispatch per thread yields the reported 512x speedup at
    #: 800 threads for ~6 s tasks.
    dispatch_overhead: float = 4.5 * MILLIS
    #: Network + queueing until the handler starts on a warm container.
    warm_start: LatencyModel = LatencyModel(12 * MILLIS, sigma=0.20)
    #: Cold container provisioning: "1 to 2 seconds of invocation
    #: delay" (Section 6.3.3).
    cold_start: LatencyModel = LatencyModel(1.4, sigma=0.15)
    #: Return-path latency for the (empty) response payload.
    response: LatencyModel = LatencyModel(8 * MILLIS, sigma=0.20)
    #: How long an idle container stays warm.
    keep_alive: float = 15 * 60.0


# ---------------------------------------------------------------------------
# Spark baseline (EMR cluster, Section 6.2.2 setup)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SparkTimings:
    """Timing model of the mini-Spark BSP engine.

    Per-task and per-stage overheads are standard Spark magnitudes;
    the per-iteration MLlib overheads are calibrated so the Fig. 4/5
    Crucial-vs-Spark gaps land where the paper reports them (LR: 62.3
    vs 75.9 s over 100 iterations; k-means k=25: 20.4 vs 34 s over 10).
    MLlib's k-means runs several jobs per iteration (assignment,
    update, cost), hence its larger fixed cost versus LR's single
    treeAggregate.
    """

    #: Driver-side cost to submit a stage (DAG scheduling).
    stage_submit: float = 30 * MILLIS
    #: Per-task launch cost (serialize closure, dispatch, deserialize).
    task_launch: float = 2 * MILLIS
    #: Executor <-> driver link.
    cluster_link: LatencyModel = LatencyModel(150 * MICROS, sigma=0.10,
                                              bandwidth=1.1e9)
    #: Fixed extra per-iteration cost of MLlib's k-means loop
    #: (multiple jobs + collect + broadcast per iteration).
    mllib_kmeans_iteration_overhead: float = 1.05
    #: Fixed extra per-iteration cost of LogisticRegressionWithSGD
    #: (one treeAggregate round).
    mllib_logreg_iteration_overhead: float = 0.105
    #: EMR cluster shape used in the paper.
    worker_nodes: int = 10
    cores_per_worker: int = 8


# ---------------------------------------------------------------------------
# AWS prices (Section 6.2.3, on-demand, us-east-1, 2019)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AwsPrices:
    lambda_gb_second: float = 0.0000166667
    lambda_per_request: float = 0.20 / 1e6
    ec2_m5_2xlarge_hour: float = 0.384
    ec2_m5_4xlarge_hour: float = 0.768
    ec2_r5_2xlarge_hour: float = 0.504
    emr_m5_2xlarge_hour: float = 0.096  # EMR surcharge per core node
    s3_get_per_1000: float = 0.0004
    s3_put_per_1000: float = 0.005


# ---------------------------------------------------------------------------
# ML compute-cost model (back-derived from Figs. 4 and 5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComputeCosts:
    """Seconds of single-vCPU time per elementary ML operation.

    k-means: distance evaluation cost per (point x dimension x
    centroid).  Calibrated from Fig. 5, k=25: 695k points/worker x 100
    dims x 25 centroids at 1.117e-9 s = 1.94 s/iteration, which plus
    synchronization reproduces Crucial's 20.4 s for 10 iterations.

    Logistic regression: per (point x feature) gradient cost from
    Fig. 4a: 0.50 s/iteration compute for 695k x 100 at 2 flops.
    Spark executors pay a slightly higher per-op cost (JVM/RDD
    overhead) plus the per-iteration reduce modelled in sparklike.
    """

    kmeans_point_dim_cluster: float = 1.15e-9
    logreg_point_feature: float = 8.0e-9
    spark_compute_inflation: float = 1.08
    #: Parsing one input byte into numeric rows (dominates the "load
    #: and parse" phase both systems pay; back-derived from Table 3's
    #: total-minus-iteration times).
    parse_per_byte: float = 4.2e-8
    #: Spark's loader is slower per byte (row objects, boxing, GC).
    spark_parse_inflation: float = 2.0
    #: Drawing one Monte-Carlo point (Fig. 2b: ~16.4M draws/s/thread).
    montecarlo_draw: float = 1.0 / 16.4e6
    #: One k-means inference (read 200 centroids + distances), compute
    #: part only; drives Fig. 8's ~490 inferences/s with 100 threads.
    inference_compute: float = 2.0 * MILLIS


# ---------------------------------------------------------------------------
# Storage tiers (HW_PARAMETERS seed data: S3 vs gp3 vs in-memory)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TieringSettings:
    """Price/latency parameters of the storage tiers, plus the
    heat/migration policy knobs of :class:`repro.storage.TieredStore`.

    The tier numbers are seeded from the ``HW_PARAMETERS`` table used
    in serverless-database cost modelling: S3 at 100-200 ms and
    $0.023/GB-month plus per-request fees, gp3 block volumes at 1-2 ms
    and $0.081/GB-month with free requests and a 125 MB/s throughput
    cap.  The in-memory tier prices RAM at the r5.2xlarge rate
    ($0.504/h for 64 GB: ~$5.75/GB-month) with grid-grade latency —
    the Table 3 economics (memory is ~250x dearer per GB than S3, and
    ~4 orders of magnitude faster per request) in one table.
    """

    #: gp3 block tier: 1-2 ms per request, free requests, throughput
    #: capped at 125 MB/s.
    gp3_get: LatencyModel = LatencyModel(1.4 * MILLIS, sigma=0.12,
                                         bandwidth=125e6)
    gp3_put: LatencyModel = LatencyModel(1.6 * MILLIS, sigma=0.12,
                                         bandwidth=125e6)
    gp3_dollars_per_gb_month: float = 0.081
    #: In-memory tier next to compute: same 100 us hops as the data
    #: grid plus a few us of service.
    memory_get: LatencyModel = LatencyModel(207 * MICROS, sigma=0.05,
                                            bandwidth=1.2e9)
    memory_put: LatencyModel = LatencyModel(228 * MICROS, sigma=0.05,
                                            bandwidth=1.2e9)
    #: RAM rent at the r5.2xlarge rate: 0.504 $/h / 64 GB * 730 h.
    memory_dollars_per_gb_month: float = 5.75
    #: S3 capacity price (requests are priced in AwsPrices).
    s3_dollars_per_gb_month: float = 0.023

    # -- TieredStore heat/migration policy ---------------------------------
    #: Bytes the hot tier may hold before the sweeper demotes the
    #: least-recently-used objects to the next tier.
    hot_capacity_bytes: int = 64 * 10 ** 6
    #: Idle time after which an object is demotion-eligible even when
    #: the hot tier has room (cold data should not pay memory rent).
    demote_after: float = 30.0
    #: Accesses within the heat window that promote a cold object back
    #: next to compute.
    promote_hits: int = 2
    #: Sliding window over which accesses count toward promotion.
    heat_window: float = 10.0
    #: Period of the background migration sweep.
    sweep_period: float = 5.0


# ---------------------------------------------------------------------------
# Dataset (Section 6.2.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetSpec:
    """The spark-perf dataset: 100 GB, 55.6M elements, 100 features."""

    nominal_points: int = 55_600_000
    features: int = 100
    nominal_bytes: int = 100 * 10 ** 9
    partitions: int = 80


@dataclass(frozen=True)
class Config:
    """Root configuration: one object wires a whole simulated cloud."""

    storage: StorageLatencies = field(default_factory=StorageLatencies)
    dso: DsoTimings = field(default_factory=DsoTimings)
    grid: GridTimings = field(default_factory=GridTimings)
    redis: RedisTimings = field(default_factory=RedisTimings)
    spark: SparkTimings = field(default_factory=SparkTimings)
    faas_limits: FaasLimits = field(default_factory=FaasLimits)
    faas_timings: FaasTimings = field(default_factory=FaasTimings)
    prices: AwsPrices = field(default_factory=AwsPrices)
    compute: ComputeCosts = field(default_factory=ComputeCosts)
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    tiering: TieringSettings = field(default_factory=TieringSettings)


DEFAULT_CONFIG = Config()
