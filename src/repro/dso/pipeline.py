"""Pipelined + batched DSO method shipping (client side).

``DsoLayer.invoke`` is one synchronous round trip per op: the caller
pays two client<->server hops for every invocation, even when it does
not need the reply yet.  This module adds the asynchronous path
Cloudburst-style stateful-serverless systems use to amortize that cost:

* :meth:`DsoLayer.invoke_async` stamps the op with the caller's session
  (at **submit** time, on the submitting thread — so exactly-once
  ordering is exactly what it would be for sequential ``invoke``),
  enqueues it on the calling endpoint's :class:`_Pipeline`, and returns
  a :class:`DsoFuture` immediately.
* A per-endpoint pump thread flushes the queue when it reaches
  ``pipeline_max_batch`` ops, when ``pipeline_flush_window`` of virtual
  time has passed since the batch started forming, or when someone
  blocks on a future / calls ``flush()``.
* At flush time, *consecutive* ops that hash to the same primary ship
  as one round trip: one request transfer carries the whole run, the
  primary executes the ops back to back (each still taking the
  per-object lock, deduplicating against the session table, and
  charging its own service time), replicated ops share a single SMR
  ordering round, and one reply transfer carries the results back,
  demultiplexed to the futures.

Batching never reorders ops within a session: the queue is drained in
submission order, and only consecutive same-primary ops coalesce — a
run boundary is a barrier, so cross-primary order is preserved too.
Leases and cacheable reads bypass the pipeline entirely (they are
either served locally or idempotent and unstamped); a synchronous
``invoke`` from an endpoint with queued async ops drains the pipeline
first, so mixed sync/async code keeps its program order.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.simulation.primitives import Condition, Event


class DsoFuture:
    """Handle to one asynchronously shipped invocation.

    ``result()`` blocks (in virtual time) until the op's reply arrives,
    re-raising any application exception the method raised remotely —
    the same surface a synchronous ``invoke`` would have had.  Blocking
    on an unflushed future requests an immediate flush first, so a
    submit-then-wait pattern never stalls for the flush window.
    """

    __slots__ = ("_pipeline", "_event", "_value", "_error", "_done")

    def __init__(self, pipeline: "_Pipeline | None" = None):
        self._pipeline = pipeline
        self._event = (Event(pipeline.layer.kernel)
                       if pipeline is not None else None)
        self._value: Any = None
        self._error: BaseException | None = None
        self._done = False

    @property
    def done(self) -> bool:
        """Whether the reply (or failure) has arrived."""
        return self._done

    def result(self) -> Any:
        """Wait for and return the op's reply."""
        if not self._done:
            self._pipeline.request_flush()
            self._event.wait()
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self) -> BaseException | None:
        """Wait for completion; the failure, or ``None`` on success."""
        if not self._done:
            self._pipeline.request_flush()
            self._event.wait()
        return self._error

    # -- pump side ---------------------------------------------------------

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._done = True
        if self._event is not None:
            self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True
        if self._event is not None:
            self._event.set()


class _PendingOp:
    """One queued invocation: wire arguments plus client-side context."""

    __slots__ = ("ref", "method", "args", "kwargs", "ctor", "cost",
                 "raw_service", "session", "stamp", "future")

    def __init__(self, ref, method, args, kwargs, ctor, cost, raw_service,
                 session, stamp, future):
        self.ref = ref
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.ctor = ctor
        self.cost = cost
        self.raw_service = raw_service
        self.session = session
        self.stamp = stamp
        self.future = future


class _Pipeline:
    """Per-endpoint op queue plus the daemon pump that flushes it."""

    def __init__(self, layer, client: str):
        self.layer = layer
        self.client = client
        self.pending: deque[_PendingOp] = deque()
        self._cv = Condition(layer.kernel)
        self._flush_requested = False
        #: Ops taken off the queue and currently executing in the pump.
        self.inflight = 0
        self._pump = layer.kernel.spawn(
            self._run, daemon=True, name=f"{layer.name}-pipe-{client}")

    def submit(self, op: _PendingOp) -> None:
        with self._cv:
            self.pending.append(op)
            self._cv.notify_all()

    def request_flush(self) -> None:
        """Flush now instead of waiting out the batching window."""
        with self._cv:
            self._flush_requested = True
            self._cv.notify_all()

    def drain(self) -> None:
        """Block until every currently queued op has completed."""
        with self._cv:
            self._flush_requested = True
            self._cv.notify_all()
            while self.pending or self.inflight:
                self._cv.wait()

    @property
    def busy(self) -> bool:
        return bool(self.pending) or self.inflight > 0

    def _run(self) -> None:
        timings = self.layer.config.dso
        kernel = self.layer.kernel
        while True:
            with self._cv:
                while not self.pending:
                    self._flush_requested = False
                    self._cv.wait()
                # Let a partial batch fill up, bounded by the window.
                window_end = kernel.now + timings.pipeline_flush_window
                while (not self._flush_requested
                       and len(self.pending) < timings.pipeline_max_batch):
                    remaining = window_end - kernel.now
                    if remaining <= 0:
                        break
                    self._cv.wait(remaining)
                batch = []
                while self.pending and len(batch) < timings.pipeline_max_batch:
                    batch.append(self.pending.popleft())
                self.inflight = len(batch)
            try:
                self.layer._run_batch(self.client, batch)
            finally:
                with self._cv:
                    self.inflight = 0
                    self._cv.notify_all()
