"""Object references: ``(type, key)`` pairs plus placement policy.

Section 4.1: "each object in the DSO layer is uniquely identified by a
reference.  Given an object of type T, the reference to this object is
(T, k)" — where ``k`` defaults to the field name of the encompassing
object and can be overridden with ``@Shared(key=k)``.  The reference
is what gets consistent-hashed to locate the object.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DsoReference:
    """Identity and placement policy of one shared object."""

    type_name: str
    key: str
    #: Persistent objects are replicated ``rf`` times and survive the
    #: application (Section 3.1); ephemeral objects have ``rf == 1``.
    persistent: bool = False
    rf: int = 1

    def __post_init__(self):
        if self.rf < 1:
            raise ValueError(f"replication factor must be >= 1: {self.rf}")
        if not self.persistent and self.rf != 1:
            raise ValueError("ephemeral objects are not replicated (rf=1)")
        if self.persistent and self.rf < 2:
            raise ValueError("persistent objects need rf >= 2")

    @property
    def ident(self) -> tuple[str, str]:
        """The hashable placement identity ``(T, k)``."""
        return (self.type_name, self.key)

    def __str__(self) -> str:
        flavor = f"persistent rf={self.rf}" if self.persistent else "ephemeral"
        return f"({self.type_name}, {self.key!r}) [{flavor}]"


def reference_for(cls: type, key: str, persistent: bool = False,
                  rf: int | None = None) -> DsoReference:
    """Build the reference for class ``cls`` under ``key``."""
    if rf is None:
        rf = 2 if persistent else 1
    return DsoReference(type_name=cls.__name__, key=key,
                        persistent=persistent, rf=rf)
