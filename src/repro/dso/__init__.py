"""The distributed shared object (DSO) layer.

Crucial's core contribution: mutable shared state organized as
*callable objects* living inside a low-latency in-memory store.
Clients ship method invocations to the object's primary replica
(located via consistent hashing of the ``(type, key)`` reference);
persistent objects are replicated with state machine replication, and
membership changes trigger background rebalancing.  On top of the
per-object guarantees, :mod:`repro.dso.txn` adds read-atomic
multi-object transactions (AFT-style: atomic visibility, exactly-once
fenced commit).
"""

from repro.dso.cache import ObjectCache, readonly
from repro.dso.txn import Txn, TxnCell, unreplicated
from repro.dso.reference import DsoReference
from repro.dso.layer import DsoLayer

__all__ = ["DsoReference", "DsoLayer", "ObjectCache", "readonly",
           "Txn", "TxnCell", "unreplicated"]
