"""The DSO layer: placement, method shipping, SMR, rebalancing.

Clients never hold object state: they ship method invocations to the
object's *primary* replica, located by consistent-hashing the
``(type, key)`` reference over the current membership view
(Section 4.1).  Linearizability comes from a per-object lock at the
primary: invocations acquire it in arrival order and execute one at a
time.

Persistent objects (``rf >= 2``): each invocation is applied, in the
same order, at every replica before the client is acknowledged —
state machine replication.  The inter-replica ordering round adds two
one-way hops plus replica-side work, reproducing Table 2's latency
doubling.  On a node crash the surviving replicas take over after
failure detection; acknowledged writes survive (``rf - 1`` joint
failures tolerated, Section 4.4).

Membership changes install totally-ordered views; a background
rebalancer then moves objects to their new consistent-hash owners,
holding each object's lock only for its own transfer — the "minimal
service interruption" property, and the recovery ramp of Fig. 8.

Shipped invocations are **exactly-once**: every call carries a
deterministic :class:`repro.dso.session.SessionStamp`, containers
remember the replies they produced per client session (replicated via
SMR, shipped on rebalance, snapshotted on passivation), and retries —
including failover retries against a newly promoted replica — receive
the cached reply instead of re-executing.  The paper leaves this to
application-level idempotence (Section 4.4); see DESIGN.md
"Exactly-once method shipping" for the deviation.

With ``read_cache=True`` the layer additionally serves methods marked
:func:`~repro.dso.cache.readonly` from per-container leased snapshot
caches; mutating invocations revoke outstanding leases before they are
acknowledged, and failover/rebalance invalidate leases via the
placement version.  Off by default (the paper always ships); see
:mod:`repro.dso.cache` and DESIGN.md "Lease-based caching".
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.membership import MembershipService, View
from repro.config import Config, DEFAULT_CONFIG
from repro.core.retry import RetryPolicy
from repro.dso.cache import CacheEntry, LeaseGrant, ObjectCache, is_readonly, readonly
from repro.dso.pipeline import DsoFuture, _PendingOp, _Pipeline
from repro.dso.reference import DsoReference
from repro.dso.server import DsoCall, DsoNode, ObjectContainer, ServerCondition
from repro.dso.session import SessionStamp, _ClientSession
from repro.dso.txn import (
    Txn,
    TxnCell,
    _commit_fence_disabled,
    is_unreplicated,
)
from repro.errors import (
    NetworkError,
    NoSuchObjectError,
    NodeCrashedError,
    ObjectLostError,
    ServiceUnavailableError,
    SessionReplayError,
    TxnPrepareLostError,
)
from repro.net.network import Network, ship
from repro.simulation.kernel import Kernel, current_thread
from repro.storage.backend import StorageBackend


class ServerObject:
    """Base class for objects needing server-side facilities.

    Methods of a ``ServerObject`` receive the current :class:`DsoCall`
    as their first argument and may park it on conditions created with
    :meth:`new_condition` — the wait/notify pattern the paper's
    synchronization objects use.  Server objects are never replicated
    (footnote 2: synchronization objects are ephemeral).
    """

    _container: ObjectContainer | None = None

    def attach(self, container: ObjectContainer) -> None:
        self._container = container

    def new_condition(self) -> ServerCondition:
        assert self._container is not None, "object not hosted yet"
        return self._container.condition()


class KvSlot:
    """A plain value cell: the raw GET/PUT path measured in Table 2."""

    def __init__(self, value: Any = None):
        self.value = value

    @readonly
    def get(self) -> Any:
        return self.value

    def set(self, value: Any) -> None:
        self.value = value


class _StaleContainer(Exception):
    """Internal: the container moved while we queued on its lock."""


def _backup_dedup_disabled() -> bool:
    """Mutation-test hook: ``REPRO_TEST_NO_BACKUP_DEDUP=1`` disables
    the backup-side session lookup during replication, so a
    re-replicated op double-applies at backups that already executed
    it.  Exists solely to prove the exploration fuzzer detects the
    resulting exactly-once violation (``tests/explore/
    test_mutation_smoke.py``); never set outside tests.
    """
    return os.environ.get("REPRO_TEST_NO_BACKUP_DEDUP", "") == "1"


#: Sentinel distinguishing "cache miss" from a cached ``None`` result.
_CACHE_MISS = object()


@dataclass
class Placement:
    ref: DsoReference
    replicas: list[str]
    lost: bool = False
    version: int = 0


@dataclass
class LayerStats:
    invocations: int = 0
    retries: int = 0
    creations: int = 0
    rebalanced_objects: int = 0
    lost_objects: int = 0
    #: Retransmissions answered from a cached session reply instead of
    #: re-executing (the exactly-once guarantee doing its job).
    dedup_hits: int = 0
    #: Read-only invocations served from a leased client-side cache
    #: (no network round trip) / ones that had to ship after all.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Leases handed out by primaries with read-only replies.
    leases_granted: int = 0
    #: Leases revoked by mutating invocations before acknowledging.
    lease_revocations: int = 0
    #: Ops shipped through the pipelined async path, and the batch
    #: round trips that carried them (repro.dso.pipeline).
    pipelined_ops: int = 0
    batches: int = 0
    #: Read-atomic multi-object transactions (repro.dso.txn).
    txns_committed: int = 0
    txns_aborted: int = 0
    #: Prepare ops shipped by transaction commits (including
    #: re-prepares after failover).
    txn_prepares: int = 0
    #: Commit-fence rejections: a commit reached a primary with no
    #: prepared entry (crash-failover lost it) and was turned back
    #: for re-prepare instead of silently dropping the write.
    txn_fence_trips: int = 0
    #: Transactional reads that retried because no version was
    #: consistent with the read set yet, and reads answered from a
    #: prepared entry forced by a committed sibling (RAMP-style).
    txn_read_retries: int = 0
    txn_forced_fetches: int = 0


class DsoLayer:
    """A deployment of DSO storage nodes plus its client-side logic."""

    def __init__(self, kernel: Kernel, network: Network,
                 config: Config = DEFAULT_CONFIG, name: str = "dso",
                 copy_instances: bool = True, read_cache: bool = False):
        self.kernel = kernel
        self.network = network
        self.config = config
        self.name = name
        #: Ship object state through pickle on creation/rebalance.
        #: Benchmarks with huge logical objects can disable it.
        self.copy_instances = copy_instances
        #: Lease-based client-side caching of read-only invocations
        #: (repro.dso.cache).  Off by default: the paper's model ships
        #: every read, and Table 2 is calibrated against that.
        self.read_cache = read_cache
        #: One ObjectCache per execution site (client process or FaaS
        #: container endpoint); dropped when the container is
        #: reclaimed, so cache lifetime == container lifetime.
        self._caches: dict[str, ObjectCache] = {}
        self.membership = MembershipService(
            kernel, failure_detection_delay=config.dso.failure_detection)
        self.nodes: dict[str, DsoNode] = {}
        self.ring: ConsistentHashRing | None = None
        self.stats = LayerStats()
        self._placements: dict[tuple[str, str], Placement] = {}
        self._node_ids = itertools.count()
        timings = config.dso
        self._retry_policy = RetryPolicy(
            backoff=timings.retry_backoff,
            multiplier=timings.retry_backoff_multiplier,
            max_backoff=timings.retry_backoff_max,
            jitter=timings.retry_jitter)
        # Exactly-once session state (client side).  Thread sessions are
        # keyed by the calling sim thread's tid; their ids come from a
        # per-layer counter, so session ids — and hence traces — are
        # deterministic for a fixed seed and workload.
        self._session_ids = itertools.count()
        self._thread_sessions: dict[int, _ClientSession] = {}
        self._named_stack: dict[int, list[_ClientSession]] = {}
        #: Per-endpoint async op queues (repro.dso.pipeline), created
        #: lazily on the first invoke_async — the dict stays empty (and
        #: the sync path pays nothing) until the feature is used.
        self._pipelines: dict[str, _Pipeline] = {}
        # Read-atomic transactions (repro.dso.txn).  Commit ids come
        # from a plain counter — no RNG, no clock — and the logs are
        # append-only client-side records for the atomicity checker;
        # all of it is free until the first transaction runs, so the
        # Table 2 / Fig. 2a calibration is untouched.
        self._txn_cids = itertools.count(1)
        self.txn_log: list = []
        self.txn_reads: list = []
        self._failure_detector = None
        self.membership.subscribe(self._on_view)

    # ------------------------------------------------------------------
    # Deployment management
    # ------------------------------------------------------------------

    def add_node(self, name: str | None = None) -> DsoNode:
        """Provision one storage node and announce it to the group."""
        if name is None:
            name = f"{self.name}-{next(self._node_ids)}"
        node = DsoNode(self.kernel, self.network, name,
                       workers=self.config.dso.node_workers,
                       session_limit=self.config.dso.session_table_max)
        self.nodes[name] = node
        latency = self.config.dso.replica_replica
        for other in self.nodes.values():
            if other is not node:
                self.network.set_link(name, other.name, latency)
        self.membership.join(node.node)
        return node

    def enable_failure_detector(self, period: float = 1.0,
                                timeout: float | None = None):
        """Switch from modelled detection delay to a real heartbeat
        detector: crashes are then *noticed*, not announced."""
        from repro.cluster.failure_detector import HeartbeatFailureDetector

        if timeout is None:
            timeout = self.config.dso.failure_detection
        self._failure_detector = HeartbeatFailureDetector(
            self.kernel, self.network, self.membership,
            period=period, timeout=timeout,
            name=f"{self.name}-fd").start()
        return self._failure_detector

    def crash_node(self, name: str) -> None:
        """Fail-stop ``name``; detection takes ``failure_detection`` s
        (or, with a heartbeat detector enabled, its detection bound).

        Must run in a simulated thread (it releases parked waiters).
        """
        node = self.nodes[name]
        node.crash()
        if self._failure_detector is None:
            self.membership.report_crash(name)

    def restart_node(self, name: str) -> DsoNode:
        """Bring a crashed node back as a fresh, empty member.

        Its previous containers died with the crash (in-memory store);
        it rejoins the group and the rebalancer migrates objects onto
        it.  Must run in a simulated thread if detection of the crash
        is still pending (it waits for the expulsion view first, so
        the join installs a clean successor view).
        """
        node = self.nodes[name]
        if node.alive:
            return node
        while name in self.membership.view.members:
            current_thread().sleep(self.config.dso.retry_backoff)
        node.node.restart()
        node.slow_factor = 1.0
        self.membership.join(node.node)
        return node

    def remove_node(self, name: str) -> None:
        """Graceful departure: announce first, let rebalancing drain."""
        self.membership.leave(name)

    def live_nodes(self) -> list[DsoNode]:
        return [n for n in self.nodes.values() if n.alive]

    def member_nodes(self) -> list[DsoNode]:
        """Live nodes that are in the *current membership view*.

        Differs from :meth:`live_nodes` after a graceful
        :meth:`remove_node`: the departed node keeps running while the
        rebalancer drains it, but it is no longer part of the serving
        fleet — capacity controllers and rent meters count members,
        not survivors.
        """
        view = self.membership.view
        return [n for n in self.nodes.values()
                if n.alive and n.name in view]

    # ------------------------------------------------------------------
    # Client sessions (exactly-once method shipping)
    # ------------------------------------------------------------------

    def _session_for(self, client: str) -> _ClientSession:
        """The session that will stamp the calling thread's next
        invocation: the innermost active named session, else the
        thread's implicit session (created lazily)."""
        tid = current_thread().tid
        stack = self._named_stack.get(tid)
        if stack:
            return stack[-1]
        session = self._thread_sessions.get(tid)
        if session is None:
            session = _ClientSession(
                sid=f"{self.name}/{client}#s{next(self._session_ids)}")
            self._thread_sessions[tid] = session
        return session

    @contextmanager
    def session(self, name: str) -> Iterator[str]:
        """Run a block under a *named* session.

        Re-entering the same name replays the original stamps, so
        every DSO invocation inside the block returns its originally
        cached reply instead of re-executing — the primitive behind
        :func:`repro.core.idempotency.once`.  Call
        :meth:`retire_session` once the block's effects are no longer
        needed.  Yields the wire-level session id.
        """
        tid = current_thread().tid
        session = _ClientSession(sid=f"named:{name}", named=True)
        stack = self._named_stack.setdefault(tid, [])
        stack.append(session)
        try:
            yield session.sid
        finally:
            stack.pop()
            if not stack:
                del self._named_stack[tid]

    def retire_session(self, client: str, name: str) -> int:
        """Drop a named session's cached replies from every live node.

        Returns the number of containers that held state for it.  Must
        run in a simulated thread (it pays one network round per
        node).
        """
        sid = f"named:{name}"
        retired = 0
        for node in self.live_nodes():
            self.network.ensure_endpoint(client)
            self._connect(client, node.name)
            self.network.transfer(client, node.name, ("retire", sid))
            for container in node.containers.values():
                if container.sessions.retire(sid):
                    retired += 1
        return retired

    def _retry_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based): exponential
        with deterministic seeded jitter."""
        rng = self.kernel.rng.stream(f"dso.{self.name}.retry")
        return self._retry_policy.delay(attempt, rng)

    # ------------------------------------------------------------------
    # Read-atomic multi-object transactions (repro.dso.txn)
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, client: str, rf: int = 1) -> Iterator[Txn]:
        """Run a block as one read-atomic transaction.

        Yields a :class:`~repro.dso.txn.Txn`; the block's reads
        observe an atomic-visibility snapshot, writes are buffered,
        and a clean exit commits all of them atomically (an exception
        aborts).  ``rf >= 2`` keys survive primary crashes mid-commit
        — the commit fence re-prepares at the promoted backup, and
        session dedup keeps the retried commit exactly-once.
        """
        txn = Txn(self, client, rf=rf)
        try:
            yield txn
        except BaseException:
            if txn.status == "open":
                txn.abort()
            raise
        else:
            if txn.status == "open":
                txn.commit()

    def _txn_ref(self, key: str, rf: int = 1) -> DsoReference:
        return DsoReference("TxnCell", key, persistent=rf > 1, rf=rf)

    def _txn_ctor(self) -> tuple:
        return (TxnCell, (), {"history": self.config.dso.txn_history})

    # ------------------------------------------------------------------
    # Lease-based read caching (repro.dso.cache)
    # ------------------------------------------------------------------

    def enable_read_cache(self) -> None:
        """Turn on leased client-side caching of read-only methods."""
        self.read_cache = True

    def drop_endpoint_cache(self, endpoint: str) -> None:
        """Discard ``endpoint``'s object cache (container reclaimed).

        Wired to :meth:`repro.faas.platform.FaasPlatform.\
on_container_reclaim` so cache lifetime equals container lifetime:
        a keep-alive expiry or chaos kill forgets the working set, a
        warm container keeps it.  Leases the endpoint still holds at
        primaries expire by TTL (or are revoked by the next write).
        """
        self._caches.pop(endpoint, None)

    def cache_of(self, endpoint: str) -> ObjectCache | None:
        """The endpoint's object cache, if it has one (introspection)."""
        return self._caches.get(endpoint)

    def _cacheable(self, ctor: tuple | None, method: str) -> bool:
        """Whether this invocation may use the leased read cache.

        Classified from the constructor recipe's class — available
        client-side and independent of cache state, so the decision
        (and hence session-stamp assignment for the remaining calls)
        is deterministic across runs and named-session replays.
        """
        return (self.read_cache and ctor is not None
                and method != "__dso_touch__"
                and is_readonly(ctor[0], method))

    def _cached_read(self, client: str, ref: DsoReference, method: str,
                     args: tuple, kwargs: dict, cost: float) -> Any:
        """Serve a read-only invocation locally, or ``_CACHE_MISS``.

        A hit requires an unexpired lease whose placement version
        still matches — failover, rebalance, and restore all bump the
        version, which is how a promoted backup conservatively
        revokes every lease its dead predecessor granted.
        """
        cache = self._caches.get(client)
        entry = cache.get(ref.ident) if cache is not None else None
        placement = self._placements.get(ref.ident)
        if (entry is None or placement is None or placement.lost
                or entry.version != placement.version
                or entry.expiry <= self.kernel.now):
            if entry is not None:
                cache.invalidate(ref.ident)
            self.stats.cache_misses += 1
            return _CACHE_MISS
        with self.kernel.tracer.span(
                "dso.cache_hit", kind="client", endpoint=client,
                attributes={"key": ref.key, "method": method}):
            overhead = self.config.dso.cache_hit_overhead
            if overhead + cost > 0:
                current_thread().sleep(overhead + cost)
            bound = getattr(entry.snapshot, method, None)
            if bound is None or not callable(bound):
                raise AttributeError(
                    f"{type(entry.snapshot).__name__} has no method "
                    f"{method!r}")
            result = bound(*args, **kwargs)
        self.stats.cache_hits += 1
        # Copy out: the caller must never mutate the cached snapshot
        # through an aliased result (same wire discipline as ship()).
        return ship(result) if self.copy_instances else result

    def _grant_lease(self, container: ObjectContainer, client: str,
                     version: int) -> LeaseGrant:
        """Primary side: record a lease and build the reply grant."""
        expiry = self.kernel.now + self.config.dso.lease_ttl
        container.leases.grant(client, expiry)
        self.stats.leases_granted += 1
        return LeaseGrant(snapshot=container.instance, expiry=expiry,
                          version=version)

    def _store_cache(self, client: str, ref: DsoReference,
                     grant: LeaseGrant) -> None:
        cache = self._caches.get(client)
        if cache is None:
            cache = self._caches[client] = ObjectCache(
                limit=self.config.dso.cache_max_objects)
        cache.put(ref.ident, CacheEntry(snapshot=grant.snapshot,
                                        expiry=grant.expiry,
                                        version=grant.version))

    def _revoke_leases(self, container: ObjectContainer,
                       primary_name: str) -> None:
        """Invalidate every outstanding lease before a write acks.

        Each holder is sent an invalidation message (charged to the
        writer, like any transfer); a holder the primary cannot reach
        is waited out to its lease expiry instead — after which its
        cache entry is stale by time.  Unreachable holders are waited
        out *together*: their leases expire concurrently, so k
        partitioned holders stall the writer to the max remaining TTL,
        not the sum — and reachable holders are invalidated before any
        waiting starts.  Runs under the object lock, so no new lease
        can be granted concurrently.
        """
        holders = container.leases.active(self.kernel.now)
        container.leases.clear()
        if not holders:
            return
        with self.kernel.tracer.span(
                "dso.lease_revoke", kind="server", endpoint=primary_name,
                attributes={"object": "/".join(container.key),
                            "holders": len(holders)}):
            unreachable: list[tuple[str, float]] = []
            for holder, expiry in holders:
                try:
                    self.network.transfer(primary_name, holder,
                                          ("dso.lease_revoke",
                                           container.key))
                except NetworkError:
                    unreachable.append((holder, expiry))
                    continue
                cache = self._caches.get(holder)
                if cache is not None:
                    cache.invalidate(container.key)
                self.stats.lease_revocations += 1
            if unreachable:
                remaining = (max(expiry for _, expiry in unreachable)
                             - self.kernel.now)
                if remaining > 0:
                    current_thread().sleep(remaining)
                for holder, _ in unreachable:
                    cache = self._caches.get(holder)
                    if cache is not None:
                        cache.invalidate(container.key)
                    self.stats.lease_revocations += 1

    def _invalidate_all_caches(self, ident: tuple[str, str]) -> None:
        """Purge ``ident`` everywhere (delete/restore control plane:
        those reset the placement version, so version matching alone
        cannot be trusted to fence pre-existing entries)."""
        for cache in self._caches.values():
            cache.invalidate(ident)

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def invoke(self, client: str, ref: DsoReference, method: str,
               args: tuple = (), kwargs: dict | None = None,
               ctor: tuple | None = None, cost: float = 0.0,
               raw_service: float | None = None) -> Any:
        """Ship a method invocation to ``ref``'s primary replica.

        ``ctor = (cls, ctor_args, ctor_kwargs)`` creates the object on
        first touch.  ``cost`` is the modelled CPU seconds the method
        burns server-side (beyond fixed dispatch overhead).  Transient
        infrastructure failures are retried until failure detection
        re-homes the object; application exceptions raised by the
        method propagate to the caller.
        """
        kwargs = kwargs or {}
        if self._pipelines:
            # Program order across the sync/async boundary: a sync op
            # must not overtake async ops this endpoint already queued.
            pipeline = self._pipelines.get(client)
            if pipeline is not None and pipeline.busy:
                pipeline.drain()
        tracer = self.kernel.tracer
        cacheable = self._cacheable(ctor, method)
        if cacheable:
            hit = self._cached_read(client, ref, method, args, kwargs,
                                    cost)
            if hit is not _CACHE_MISS:
                return hit
        if cacheable:
            # Read-only invocations are idempotent and never shipped
            # under a session stamp (re-execution on retry is
            # harmless); skipping the stamp keeps sequence numbers —
            # and named-session replays — independent of cache state.
            session = None
            stamp = None
            attributes = {"key": ref.key, "rf": ref.rf, "readonly": True}
        else:
            session = self._session_for(client)
            # Stamp once, outside the retry loop: every retransmission
            # of this logical call carries the identical (sid, seq),
            # which is what lets servers recognise and deduplicate it.
            stamp = session.stamp()
            attributes = {"key": ref.key, "rf": ref.rf,
                          "session": stamp.sid, "seq": stamp.seq}
        with tracer.span(f"dso.invoke:{ref.type_name}.{method}",
                         kind="client", endpoint=client,
                         attributes=attributes) as span:
            deadline = self.kernel.now + self._retry_deadline_pad()
            attempts = 0
            while True:
                attempts += 1
                try:
                    result = self._invoke_once(client, ref, method, args,
                                               kwargs, ctor, cost,
                                               raw_service, stamp,
                                               lease=cacheable)
                    if attempts > 1:
                        span.set("retries", attempts - 1)
                    if session is not None:
                        session.acknowledge(stamp.seq)
                    return result
                except (_StaleContainer, NetworkError,
                        NodeCrashedError) as exc:
                    self.stats.retries += 1
                    placement = self._placements.get(ref.ident)
                    if placement is not None and placement.lost:
                        raise ObjectLostError(
                            f"{ref} was lost in a storage-node failure"
                        ) from exc
                    self._backoff_or_raise(attempts, deadline)

    def _backoff_or_raise(self, attempts: int, deadline: float) -> None:
        """Sleep the retry backoff, clamped to ``deadline``.

        A backoff that would overshoot the retry window instead waits
        out the window and re-raises the original failure — without the
        clamp, one over-long sleep fires an extra attempt past the
        documented ``_retry_deadline_pad`` budget.  Must be called from
        the ``except`` block of a retry loop (re-raises the active
        exception at the deadline).
        """
        if self.kernel.now >= deadline:
            raise
        delay = self._retry_delay(attempts - 1)
        remaining = deadline - self.kernel.now
        if delay >= remaining:
            current_thread().sleep(remaining)
            raise
        current_thread().sleep(delay)

    def _retry_deadline_pad(self) -> float:
        """How long transient failures are retried before surfacing:
        detection + view installation + the configured grace."""
        timings = self.config.dso
        return (timings.failure_detection + timings.view_change_pause
                + timings.retry_grace)

    def get(self, client: str, key: str, rf: int = 1) -> Any:
        """Raw 1-value GET (the Table 2 code path)."""
        ref = self._kv_ref(key, rf)
        return self.invoke(client, ref, "get", ctor=(KvSlot, (), {}),
                           raw_service=self.config.dso.get_service)

    def put(self, client: str, key: str, value: Any, rf: int = 1) -> None:
        """Raw 1-value PUT (the Table 2 code path)."""
        ref = self._kv_ref(key, rf)
        self.invoke(client, ref, "set", args=(value,),
                    ctor=(KvSlot, (), {}),
                    raw_service=self.config.dso.put_service)

    # ------------------------------------------------------------------
    # Pipelined asynchronous shipping (repro.dso.pipeline)
    # ------------------------------------------------------------------

    def invoke_async(self, client: str, ref: DsoReference, method: str,
                     args: tuple = (), kwargs: dict | None = None,
                     ctor: tuple | None = None, cost: float = 0.0,
                     raw_service: float | None = None) -> DsoFuture:
        """Queue a method invocation for batched shipping.

        Returns a :class:`DsoFuture` immediately; the op ships with the
        endpoint's next batch flush (size, window, or an explicit
        :meth:`flush` / ``future.result()``).  The session stamp is
        drawn here, on the submitting thread, so the exactly-once
        sequence numbers are identical to sequential :meth:`invoke` —
        batching is invisible to the dedup machinery.  Cacheable reads
        bypass the queue (served locally or shipped unstamped) and
        return an already-resolved future.
        """
        kwargs = kwargs or {}
        if self._cacheable(ctor, method):
            future = DsoFuture()
            try:
                future._resolve(self.invoke(client, ref, method, args,
                                            kwargs, ctor, cost,
                                            raw_service))
            except Exception as exc:  # noqa: BLE001 - surfaced by result()
                future._fail(exc)
            return future
        pipeline = self._pipeline_for(client)
        session = self._session_for(client)
        future = DsoFuture(pipeline)
        pipeline.submit(_PendingOp(
            ref=ref, method=method, args=args, kwargs=kwargs, ctor=ctor,
            cost=cost, raw_service=raw_service, session=session,
            stamp=session.stamp(), future=future))
        return future

    def get_async(self, client: str, key: str, rf: int = 1) -> DsoFuture:
        """Pipelined raw GET (async counterpart of :meth:`get`)."""
        return self.invoke_async(client, self._kv_ref(key, rf), "get",
                                 ctor=(KvSlot, (), {}),
                                 raw_service=self.config.dso.get_service)

    def put_async(self, client: str, key: str, value: Any,
                  rf: int = 1) -> DsoFuture:
        """Pipelined raw PUT (async counterpart of :meth:`put`)."""
        return self.invoke_async(client, self._kv_ref(key, rf), "set",
                                 args=(value,), ctor=(KvSlot, (), {}),
                                 raw_service=self.config.dso.put_service)

    def flush(self, client: str | None = None) -> None:
        """Block until queued async ops complete (one endpoint or all).

        Must run in a simulated thread.  Returns once every op queued
        *before* the call has resolved or failed its future.
        """
        if client is not None:
            pipeline = self._pipelines.get(client)
            if pipeline is not None:
                pipeline.drain()
            return
        for pipeline in list(self._pipelines.values()):
            pipeline.drain()

    def _pipeline_for(self, client: str) -> _Pipeline:
        pipeline = self._pipelines.get(client)
        if pipeline is None:
            pipeline = self._pipelines[client] = _Pipeline(self, client)
        return pipeline

    def read_bulk(self, client: str, refs: Sequence[DsoReference],
                  method: str = "get", per_read_cost: float = 0.0) -> list[Any]:
        """Read many objects with one request per hosting node.

        Used by inference serving (Fig. 8): reading a 200-centroid
        model issues one batched request per node instead of 200
        round trips, but still charges per-object service time, so
        node capacity — the quantity the experiment stresses — is
        modelled faithfully.

        **No cross-object atomicity.**  Each per-node group observes
        its objects at that group's own service instant; a write that
        lands between two groups is seen by the later group only, so
        one bulk read can return *half* of a concurrent multi-object
        update — a fractured read.  This is by design (the sweep is
        the cheapest possible read) and asserted as expected
        behaviour in ``tests/dso/test_txn.py::
        test_read_bulk_fractures_under_mid_sweep_write``.  Callers
        that need an atomic multi-object snapshot must read inside a
        transaction instead (:meth:`transaction` /
        :class:`repro.dso.txn.Txn`), whose read-set validation
        guarantees read-atomic isolation.

        A transient failure retries only the *unfinished* per-node
        groups: objects whose group already completed keep their
        results and are not re-read, so node service time is charged
        once per completed group rather than once per attempt.
        """
        with self.kernel.tracer.span(
                "dso.read_bulk", kind="client", endpoint=client,
                attributes={"objects": len(refs)}):
            deadline = self.kernel.now + self._retry_deadline_pad()
            attempts = 0
            results: list[Any] = [None] * len(refs)
            pending = set(range(len(refs)))
            while True:
                attempts += 1
                try:
                    self._read_bulk_attempt(client, refs, method,
                                            per_read_cost, results,
                                            pending)
                    self.stats.invocations += len(refs)
                    return ship(results) if self.copy_instances else results
                except (_StaleContainer, NetworkError, NodeCrashedError):
                    self.stats.retries += 1
                    self._backoff_or_raise(attempts, deadline)

    def read_any(self, client: str, ref: DsoReference, method: str,
                 args: tuple = (), cost: float = 0.0) -> Any:
        """Eventually-consistent read from a *random* replica.

        The paper leaves weaker consistency models as future work
        (Section 7); this extension implements the obvious one: a read
        served by any replica, without the per-object lock or the SMR
        ordering round.  It can return stale state while a write is in
        flight, but halves the latency of replicated reads and spreads
        load across replicas.

        Transient infrastructure failures (replica crashed or lost the
        container to a rebalance mid-read) are retried against a fresh
        replica choice under the same deadline/backoff policy as
        :meth:`invoke` — internal routing errors never escape to the
        caller.
        """
        deadline = self.kernel.now + self._retry_deadline_pad()
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._read_any_once(client, ref, method, args, cost)
            except (_StaleContainer, NetworkError, NodeCrashedError) as exc:
                self.stats.retries += 1
                placement = self._placements.get(ref.ident)
                if placement is not None and placement.lost:
                    raise ObjectLostError(
                        f"{ref} was lost in a storage-node failure"
                    ) from exc
                self._backoff_or_raise(attempts, deadline)

    def _read_any_once(self, client: str, ref: DsoReference, method: str,
                       args: tuple, cost: float) -> Any:
        placement = self._lookup(ref, None)
        rng = self.kernel.rng.stream(f"dso.{self.name}.anyread")
        replicas = placement.replicas
        target = replicas[int(rng.integers(0, len(replicas)))]
        with self.kernel.tracer.span(
                f"dso.read_any:{ref.type_name}.{method}", kind="client",
                endpoint=client,
                attributes={"key": ref.key, "replica": target}):
            node = self._live_node(target)
            self._connect(client, target)
            self.network.transfer(client, target, (method, args))
            container = node.containers.get(ref.ident)
            if container is None or container.dead:
                raise _StaleContainer(f"{ref} not hosted on {target}")
            node.node.workers.acquire()
            try:
                current_thread().sleep((self.config.dso.method_call_overhead
                                        + cost) * node.slow_factor)
                if not node.alive or container.dead:
                    raise NodeCrashedError(
                        f"{target} crashed during {ref}.{method} read")
                result = self._apply(container, method, args, {}, None)
            finally:
                node.node.workers.release()
            self.stats.invocations += 1
            return self.network.transfer(target, client, result)

    # ------------------------------------------------------------------
    # Passivation (Section 4.1: objects "can be passivated to stable
    # storage using standard mechanisms (marshalling)")
    # ------------------------------------------------------------------

    def passivate(self, client: str, ref: DsoReference,
                  store: "StorageBackend") -> str:
        """Marshal a shared object into stable storage.

        ``store`` is any :class:`~repro.storage.backend.
        StorageBackend` — the S3-like object store, a gp3 block
        volume, or a :class:`~repro.storage.tiering.TieredStore`;
        the backend charges its own write latency and request fee.
        Returns the storage key.  The object stays live in memory;
        passivation is a checkpoint, from which :meth:`restore` can
        re-create the object after the layer lost it.
        """
        placement = self._lookup(ref, None)
        primary = self._live_node(placement.replicas[0])
        container = primary.containers.get(ref.ident)
        if container is None:
            raise NoSuchObjectError(f"{ref} not hosted")
        key = f"__dso__/{ref.type_name}/{ref.key}"
        self.network.transfer(client, primary.name, ref.ident)
        snapshot = ship(container.instance)
        store.put(key, (type(snapshot), snapshot.__dict__,
                        ship(container.sessions)))
        return key

    def restore(self, client: str, ref: DsoReference,
                store: "StorageBackend", key: str | None = None) -> None:
        """Re-create a shared object from a passivated snapshot."""
        if key is None:
            key = f"__dso__/{ref.type_name}/{ref.key}"
        cls, state, sessions = store.get(key)
        instance = cls.__new__(cls)
        instance.__dict__.update(state)
        placement = self._placements.get(ref.ident)
        if placement is not None and not placement.lost:
            raise ServiceUnavailableError(
                f"{ref} is still live; delete it before restoring")
        self._placements.pop(ref.ident, None)
        if self.ring is None or not len(self.ring):
            raise ServiceUnavailableError(f"{self.name}: no storage nodes")
        replicas = [name for name in
                    self.ring.preference_list(ref.ident, ref.rf)
                    if self.nodes[name].alive]
        if not replicas:
            raise ServiceUnavailableError(f"{self.name}: no live replica")
        restored = Placement(ref=ref, replicas=list(replicas))
        self._placements[ref.ident] = restored
        # The restored placement starts over at version 0, so version
        # matching cannot fence leases cut before the object was lost.
        self._invalidate_all_caches(ref.ident)
        for name in replicas:
            copy = ship(instance) if self.copy_instances else instance
            # Dedup state survives passivation too: a client whose
            # write landed before the snapshot still dedups after the
            # restore.
            table = ship(sessions) if self.copy_instances else sessions
            container = self.nodes[name].host(ref.ident, copy,
                                              sessions=table)
            if isinstance(copy, ServerObject):
                copy.attach(container)
        self.stats.creations += 1

    def object_exists(self, ref: DsoReference) -> bool:
        placement = self._placements.get(ref.ident)
        return placement is not None and not placement.lost

    def delete(self, client: str, ref: DsoReference) -> None:
        """Explicitly remove a shared object (how persistent objects
        die, Section 3.1)."""
        placement = self._placements.pop(ref.ident, None)
        if placement is None:
            raise NoSuchObjectError(f"{ref} does not exist")
        # A later re-creation restarts the placement version at 0, so
        # leased snapshots of the deleted incarnation must go now.
        self._invalidate_all_caches(ref.ident)
        for name in placement.replicas:
            node = self.nodes.get(name)
            if node is not None and node.alive:
                self.network.transfer(client, name, ref.ident)
                node.evict(ref.ident)

    # ------------------------------------------------------------------
    # One invocation attempt
    # ------------------------------------------------------------------

    def _invoke_once(self, client: str, ref: DsoReference, method: str,
                     args: tuple, kwargs: dict, ctor: tuple | None,
                     cost: float, raw_service: float | None,
                     stamp: SessionStamp | None = None,
                     lease: bool = False) -> Any:
        placement = self._lookup(ref, ctor)
        primary_name = placement.replicas[0]
        node = self._live_node(primary_name)
        version = placement.version
        self._connect(client, primary_name)
        shipped = self.network.transfer(client, primary_name,
                                        (method, args, kwargs, stamp))
        method, args, kwargs, stamp = shipped
        result, grant = self._execute_op(
            client, ref, method, args, kwargs, cost, raw_service, stamp,
            lease, placement, version, node, primary_name)
        if grant is not None:
            # The snapshot crosses the wire with the reply, so its
            # bytes are charged; the shipped copy never aliases the
            # primary's live instance.
            result, grant = self.network.transfer(
                primary_name, client, (result, grant))
            self._store_cache(client, ref, grant)
            return result
        return self.network.transfer(primary_name, client, result)

    def _execute_op(self, client: str, ref: DsoReference, method: str,
                    args: tuple, kwargs: dict, cost: float,
                    raw_service: float | None, stamp: SessionStamp | None,
                    lease: bool, placement: Placement, version: int,
                    node: DsoNode, primary_name: str,
                    smr_context: dict | None = None
                    ) -> tuple[Any, LeaseGrant | None]:
        """Run one shipped op at its primary: lock, dedup, apply, SMR.

        The primary-side half of :meth:`_invoke_once`, shared with the
        batched path (:meth:`_run_batch`), which executes many ops per
        round trip: ``smr_context`` then makes consecutive replicated
        ops share a single SMR ordering round (see :meth:`_replicate`).
        Returns ``(result, lease grant or None)``; the caller owns the
        reply transfer back to the client.
        """
        container = node.containers.get(ref.ident)
        if container is None or container.dead:
            raise _StaleContainer(f"{ref} not hosted on {primary_name}")
        call = DsoCall(container)
        grant: LeaseGrant | None = None
        with self.kernel.tracer.span(
                "dso.primary", kind="server", endpoint=primary_name,
                attributes={"method": method}):
            call.acquire()
            try:
                if node.containers.get(ref.ident) is not container:
                    raise _StaleContainer(f"{ref} moved off {primary_name}")
                if (not placement.replicas
                        or placement.replicas[0] != primary_name):
                    # A rebalance re-homed the primary while this op
                    # queued on the lock (possibly without evicting the
                    # local copy, if only the replica *order* changed).
                    # Fence rather than apply: an op applied here would
                    # never reach the new primary.
                    raise _StaleContainer(
                        f"{ref} re-homed off {primary_name}")
                entry = (container.sessions.lookup(stamp)
                         if stamp is not None else None)
                if entry is not None:
                    result = self._dedup_hit(placement, ref, node,
                                             container, call, entry,
                                             stamp, method, args, kwargs,
                                             cost, version, smr_context)
                else:
                    service = (raw_service if raw_service is not None
                               else self.config.dso.method_call_overhead)
                    current_thread().sleep((service + cost)
                                           * node.slow_factor)
                    if not node.alive or container.dead:
                        raise NodeCrashedError(
                            f"{primary_name} crashed during {ref}.{method}")
                    # Commit fence: a txn commit is only valid at a
                    # primary still holding the prepared entry.  A
                    # promoted backup never saw the (unreplicated)
                    # prepare, so the commit is turned back *before*
                    # any mutation or session record — the client
                    # re-prepares there and retries with a fresh
                    # stamp.  The mutation hook drops the write
                    # instead (see repro.dso.txn).
                    fence_dropped = False
                    if method == "__txn_commit__":
                        prepared = getattr(container.instance,
                                           "prepared", None)
                        if (prepared is not None
                                and args[0] not in prepared):
                            if _commit_fence_disabled():
                                fence_dropped = True
                            else:
                                self.stats.txn_fence_trips += 1
                                raise TxnPrepareLostError(
                                    f"{ref}: no prepared entry for txn "
                                    f"{args[0]!r} at {primary_name}; "
                                    f"re-prepare before committing")
                    self.stats.invocations += 1
                    if fence_dropped:
                        result = args[1]
                    else:
                        result = self._apply(container, method, args,
                                             kwargs, call)
                    # Replicate to the *current* backup set whenever
                    # one exists.  The old guard skipped replication
                    # if the placement version moved past the client's
                    # captured ``version`` — but a concurrent rebalance
                    # bumps the version while writes queue on the lock,
                    # and an acked write that silently stays
                    # primary-only is lost with the primary.  The
                    # primary fence above already rejects ops at a
                    # node that is no longer ``replicas[0]``; from the
                    # current primary, replicating under the current
                    # replica list is always correct.
                    replicated = (len(placement.replicas) > 1
                                  and not fence_dropped
                                  and not is_unreplicated(
                                      type(container.instance), method))
                    entry = None
                    if stamp is not None:
                        # Remember the reply *before* replication: if we
                        # crash mid-replication, a retry must dedup here
                        # rather than mutate twice.  committed=False until
                        # every backup has it.  A txn prepare's record is
                        # pinned under its txn id — LRU eviction must not
                        # reclaim it before the commit/abort resolves.
                        entry = container.sessions.record(
                            stamp, self._shippable(result),
                            committed=not replicated,
                            pin=(args[0] if method == "__txn_prepare__"
                                 else None))
                    if self.read_cache:
                        if not is_readonly(type(container.instance),
                                           method):
                            # Coherence: no cached read may be served
                            # after this write acks.  Runs after the
                            # session record, so a crash mid-revocation
                            # still dedups the client's retry.
                            self._revoke_leases(container, primary_name)
                            if not node.alive or container.dead:
                                raise NodeCrashedError(
                                    f"{primary_name} crashed revoking "
                                    f"leases for {ref}.{method}")
                        elif lease and not isinstance(
                                container.instance, ServerObject):
                            grant = self._grant_lease(container, client,
                                                      version)
                    if replicated:
                        # Free the primary worker before queueing for
                        # backup workers (keeps saturated replicating
                        # nodes deadlock-free); the object lock still
                        # serializes the op stream, preserving SMR's
                        # total order.
                        call.release_worker()
                        self._replicate(placement, ref, method, args,
                                        kwargs, cost, stamp, result,
                                        smr_context)
                        if entry is not None:
                            entry.committed = True
            finally:
                if not call.aborted:
                    call.release()
        return result, grant

    # ------------------------------------------------------------------
    # Batched shipping (the pump side of repro.dso.pipeline)
    # ------------------------------------------------------------------

    def _run_batch(self, client: str, ops: list[_PendingOp]) -> None:
        """Ship one flushed batch, retrying transient failures.

        A transient infrastructure failure retries only the unfinished
        ops; ops that already applied dedup against the session table
        on the retry, so a re-shipped batch never double-applies.  At
        the retry deadline the surviving failure is delivered to every
        unfinished future — the pump thread itself never dies.
        """
        remaining = [op for op in ops if not op.future.done]
        if not remaining:
            return
        deadline = self.kernel.now + self._retry_deadline_pad()
        attempts = 0
        while remaining:
            attempts += 1
            try:
                self._batch_attempt(client, remaining)
            except (_StaleContainer, NetworkError,
                    NodeCrashedError) as exc:
                self.stats.retries += 1
                survivors = []
                for op in remaining:
                    if op.future.done:
                        continue
                    placement = self._placements.get(op.ref.ident)
                    if placement is not None and placement.lost:
                        op.future._fail(ObjectLostError(
                            f"{op.ref} was lost in a storage-node "
                            f"failure"))
                    else:
                        survivors.append(op)
                remaining = survivors
                if not remaining:
                    return
                if self.kernel.now >= deadline:
                    for op in remaining:
                        op.future._fail(exc)
                    return
                # Same clamp as _backoff_or_raise, but failures land in
                # the futures instead of unwinding the pump thread.
                delay = self._retry_delay(attempts - 1)
                window = deadline - self.kernel.now
                if delay >= window:
                    current_thread().sleep(window)
                    for op in remaining:
                        op.future._fail(exc)
                    return
                current_thread().sleep(delay)
            else:
                remaining = [op for op in remaining if not op.future.done]

    def _batch_attempt(self, client: str, ops: list[_PendingOp]) -> None:
        """One pass over a batch, in submission order.

        Consecutive ops sharing a primary coalesce into one round trip
        (:meth:`_ship_group`); a run boundary is a barrier, so batching
        never reorders ops within a session — or across one.
        """
        runs: list[tuple[str, list[_PendingOp]]] = []
        for op in ops:
            if op.future.done:
                continue
            try:
                placement = self._lookup(op.ref, op.ctor)
            except (ObjectLostError, NoSuchObjectError,
                    ServiceUnavailableError) as exc:
                op.future._fail(exc)
                continue
            primary = placement.replicas[0]
            if runs and runs[-1][0] == primary:
                runs[-1][1].append(op)
            else:
                runs.append((primary, [op]))
        for primary_name, group in runs:
            self._ship_group(client, primary_name, group)

    def _ship_group(self, client: str, primary_name: str,
                    group: list[_PendingOp]) -> None:
        """One batched round trip to one primary.

        A single request transfer carries every op of the group; the
        primary executes them back to back — each still acquiring the
        per-object lock, deduplicating, and charging its own service
        time — with replicated ops sharing one SMR ordering round; a
        single reply transfer carries the results back, demultiplexed
        to the futures.  Application exceptions fail only their own
        future; infrastructure failures abort the group and surface to
        the retry loop (completed-but-unacknowledged ops dedup on the
        retry, which is when their replies reach the client).
        """
        node = self._live_node(primary_name)
        self._connect(client, primary_name)
        with self.kernel.tracer.span(
                "dso.batch", kind="client", endpoint=client,
                attributes={"primary": primary_name, "ops": len(group)}):
            shipped = self.network.transfer(
                client, primary_name,
                [(op.method, op.args, op.kwargs, op.stamp)
                 for op in group])
            smr_context: dict = {}
            outcomes: list[tuple[_PendingOp, bool, Any]] = []
            for op, wire in zip(group, shipped):
                method, args, kwargs, stamp = wire
                placement = self._placements.get(op.ref.ident)
                if placement is None or placement.lost:
                    raise _StaleContainer(f"{op.ref} no longer placed")
                if placement.replicas[0] != primary_name:
                    raise _StaleContainer(
                        f"{op.ref} moved off {primary_name} mid-batch")
                try:
                    result, _ = self._execute_op(
                        client, op.ref, method, args, kwargs, op.cost,
                        op.raw_service, stamp, False, placement,
                        placement.version, node, primary_name,
                        smr_context=smr_context)
                except (_StaleContainer, NetworkError, NodeCrashedError):
                    raise
                except Exception as exc:  # noqa: BLE001 - app-level error
                    outcomes.append((op, False, exc))
                else:
                    outcomes.append((op, True, result))
            replies = self.network.transfer(
                primary_name, client,
                [(ok, value) for _, ok, value in outcomes])
            self.stats.batches += 1
            self.stats.pipelined_ops += len(outcomes)
            for (op, _, _), (ok, value) in zip(outcomes, replies):
                if ok:
                    op.session.acknowledge(op.stamp.seq)
                    op.future._resolve(value)
                else:
                    op.future._fail(value)

    def _shippable(self, value: Any) -> Any:
        """A snapshot of ``value`` safe to cache as a session reply
        (later object mutations must not alias into it)."""
        return ship(value) if self.copy_instances else value

    def _dedup_hit(self, placement: Placement, ref: DsoReference,
                   node: DsoNode, container: ObjectContainer,
                   call: DsoCall, entry, stamp: SessionStamp,
                   method: str, args: tuple, kwargs: dict, cost: float,
                   version: int, smr_context: dict | None = None) -> Any:
        """Answer a retransmission from the session table.

        Charges only lookup-grade service time, and — crucially — if
        the original attempt died before replication finished
        (``committed`` is false), re-runs replication so the cached
        acknowledgement is as durable as a fresh one.  Backups dedup
        the re-sent op themselves.
        """
        self.stats.dedup_hits += 1
        with self.kernel.tracer.span(
                "dso.dedup_hit", kind="server", endpoint=node.name,
                attributes={"method": method, "session": stamp.sid,
                            "seq": stamp.seq}):
            current_thread().sleep(self.config.dso.get_service
                                   * node.slow_factor)
            if not node.alive or container.dead:
                raise NodeCrashedError(
                    f"{node.name} crashed during {ref}.{method} dedup")
            if not entry.committed:
                # Same rule as the fresh-apply path: a surviving
                # backup set must get the op no matter how many view
                # changes raced the retry; only the version is stale,
                # not this node's primaryship (fenced by the caller).
                if len(placement.replicas) > 1:
                    call.release_worker()
                    self._replicate(placement, ref, method, args, kwargs,
                                    cost, stamp, entry.reply, smr_context)
                entry.committed = True
        return entry.reply

    def _apply(self, container: ObjectContainer, method: str, args: tuple,
               kwargs: dict, call: DsoCall | None) -> Any:
        instance = container.instance
        if method == "__dso_touch__":
            return None  # creation ping from Proxy._ensure()
        bound = getattr(instance, method, None)
        if bound is None or not callable(bound):
            raise AttributeError(
                f"{type(instance).__name__} has no method {method!r}")
        container.applied_ops += 1
        if isinstance(instance, ServerObject) and call is not None:
            return bound(call, *args, **kwargs)
        result = bound(*args, **kwargs)
        if method in ("__txn_commit__", "__txn_abort__"):
            # The prepare's pinned dedup record may now be reclaimed;
            # runs wherever the op applies (primary, SMR backups, and
            # rebalanced tables that travelled with pins).
            container.sessions.unpin(args[0])
        return result

    def _replicate(self, placement: Placement, ref: DsoReference,
                   method: str, args: tuple, kwargs: dict, cost: float,
                   stamp: SessionStamp | None = None,
                   reply: Any = None,
                   smr_context: dict | None = None) -> None:
        """Apply the op at every backup before acknowledging (SMR).

        Methods must be deterministic: each replica executes them on
        its own copy — the state-machine-replication contract.  The
        session ``stamp`` and primary ``reply`` replicate with the op,
        so any backup promoted to primary can still deduplicate the
        client's retries.

        ``smr_context`` (a per-batch dict) lets the batched invoke path
        charge the two inter-replica ordering hops once per batch: the
        ops travel to the backups in a single totally-ordered round,
        while per-op replica work is still paid in full.
        """
        hop = self.config.dso.replica_replica
        rng = self.kernel.rng.stream(f"dso.{self.name}.smr")
        primary_name = placement.replicas[0]
        charge_hops = (smr_context is None
                       or not smr_context.get("hops_charged"))
        if smr_context is not None:
            smr_context["hops_charged"] = True
        with self.kernel.tracer.span(
                "dso.replicate", kind="server", endpoint=primary_name,
                attributes={"backups": len(placement.replicas) - 1}):
            if charge_hops:
                current_thread().sleep(hop.sample(rng))  # ordering round out
            for backup_name in placement.replicas[1:]:
                backup = self.nodes.get(backup_name)
                if backup is None or not backup.alive:
                    continue  # repaired at the next view
                if not self.network.reachable(primary_name, backup_name):
                    # Partitioned replica: SMR cannot acknowledge without
                    # it (fail-stop durability contract).  Surface as a
                    # suspected failure; the client retries until the
                    # partition heals or a view change expels the replica.
                    raise NodeCrashedError(
                        f"{backup_name} unreachable from {primary_name} "
                        "during replication")
                bcontainer = backup.containers.get(ref.ident)
                if bcontainer is None or bcontainer.dead:
                    continue
                if stamp is not None and not _backup_dedup_disabled():
                    # A re-replication after a dedup hit (or a rebalance
                    # that already shipped the table): this backup may
                    # have applied the op already.
                    try:
                        if bcontainer.sessions.lookup(stamp) is not None:
                            continue
                    except SessionReplayError:
                        continue  # applied and since truncated: done
                with self.kernel.tracer.span(
                        "dso.smr_apply", kind="server",
                        endpoint=backup_name):
                    backup.node.workers.acquire()
                    try:
                        current_thread().sleep(
                            (self.config.dso.smr_replica_overhead + cost)
                            * backup.slow_factor)
                        self._apply(bcontainer, method, args, kwargs, None)
                        if stamp is not None:
                            bcontainer.sessions.record(
                                stamp, self._shippable(reply),
                                committed=False)
                    finally:
                        backup.node.workers.release()
            if charge_hops:
                current_thread().sleep(hop.sample(rng))  # commit round back

    def _read_bulk_attempt(self, client: str,
                           refs: Sequence[DsoReference], method: str,
                           per_read_cost: float, results: list[Any],
                           pending: set[int]) -> None:
        """One pass over the *unfinished* groups of a bulk read.

        Fills ``results`` in place and discards each group's indexes
        from ``pending`` as soon as that group's reply lands, so a
        failure in a later group leaves earlier groups finished — the
        retry re-reads only what actually failed, instead of
        re-charging every node for the whole batch.
        """
        groups: dict[str, list[int]] = {}
        for index in sorted(pending):
            placement = self._lookup(refs[index], None)
            groups.setdefault(placement.replicas[0], []).append(index)
        service_each = (self.config.dso.method_call_overhead
                        + per_read_cost)
        for primary_name, indexes in sorted(groups.items()):
            node = self._live_node(primary_name)
            self._connect(client, primary_name)
            self.network.transfer(client, primary_name,
                                  [refs[i].ident for i in indexes])
            node.node.workers.acquire()
            try:
                current_thread().sleep(service_each * len(indexes)
                                       * node.slow_factor)
                if not node.alive:
                    raise NodeCrashedError(f"{primary_name} crashed mid-read")
                for i in indexes:
                    container = node.containers.get(refs[i].ident)
                    if container is None or container.dead:
                        raise _StaleContainer(f"{refs[i]} moved")
                    results[i] = self._apply(container, method, (), {}, None)
            finally:
                node.node.workers.release()
            self.network.transfer(primary_name, client, len(indexes))
            pending.difference_update(indexes)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _kv_ref(self, key: str, rf: int) -> DsoReference:
        return DsoReference("KvSlot", key, persistent=rf > 1, rf=rf)

    def _lookup(self, ref: DsoReference, ctor: tuple | None) -> Placement:
        placement = self._placements.get(ref.ident)
        if placement is not None:
            if placement.lost:
                raise ObjectLostError(
                    f"{ref} was lost in a storage-node failure")
            return placement
        if ctor is None:
            raise NoSuchObjectError(f"{ref} does not exist")
        return self._create(ref, ctor)

    def _create(self, ref: DsoReference, ctor: tuple) -> Placement:
        if self.ring is None or not len(self.ring):
            raise ServiceUnavailableError(f"{self.name}: no storage nodes")
        cls, ctor_args, ctor_kwargs = ctor
        replicas = [name for name in
                    self.ring.preference_list(ref.ident, ref.rf)
                    if self.nodes[name].alive]
        if not replicas:
            raise ServiceUnavailableError(f"{self.name}: no live replica")
        placement = Placement(ref=ref, replicas=list(replicas))
        # Register before hosting: no suspension points in between, so
        # concurrent first-touch creations cannot double-create.
        self._placements[ref.ident] = placement
        for name in replicas:
            instance = cls(*ship(ctor_args), **ship(ctor_kwargs)) \
                if self.copy_instances else cls(*ctor_args, **ctor_kwargs)
            container = self.nodes[name].host(ref.ident, instance)
            if isinstance(instance, ServerObject):
                instance.attach(container)
        self.stats.creations += 1
        return placement

    def _live_node(self, name: str) -> DsoNode:
        node = self.nodes.get(name)
        if node is None or not node.alive:
            raise NetworkError(f"{name} is down")
        return node

    def _connect(self, client: str, node_name: str) -> None:
        self.network.ensure_endpoint(client)
        latency = self.config.dso.client_server
        if self.network.link(client, node_name) is not latency:
            self.network.set_link(client, node_name, latency)

    # ------------------------------------------------------------------
    # View changes and rebalancing
    # ------------------------------------------------------------------

    def _on_view(self, view: View) -> None:
        self.ring = (ConsistentHashRing(view.members)
                     if view.members else None)
        for placement in self._placements.values():
            if placement.lost:
                continue
            # Drop only *dead* replicas.  A node that left gracefully
            # is still alive and keeps serving its objects until the
            # background rebalancer migrates them to the new owners.
            survivors = [
                n for n in placement.replicas
                if n in view.members
                or (n in self.nodes and self.nodes[n].alive)]
            if survivors != placement.replicas:
                placement.version += 1
            if not survivors:
                placement.lost = True
                placement.replicas = []
                self.stats.lost_objects += 1
            else:
                placement.replicas = survivors
        if view.members:
            self.kernel.spawn(self._rebalance, view, daemon=True,
                              name=f"{self.name}-rebalance-{view.view_id}")

    def _rebalance(self, view: View) -> None:
        """Move objects to their new consistent-hash owners.

        Runs in the background after ``view_change_pause``; each
        object's lock is held only for its own transfer, so foreground
        traffic stalls at most per-object ("service interruption is
        minimal", Section 4.1).  The per-object transfer cost includes
        deliberate throttling, which is what stretches the Fig. 8
        recovery over tens of seconds.
        """
        timings = self.config.dso
        current_thread().sleep(timings.view_change_pause)
        for ident in sorted(self._placements):
            if self.membership.view.view_id != view.view_id:
                return  # superseded by a newer view
            placement = self._placements[ident]
            if placement.lost or isinstance(
                    self._primary_instance(placement), ServerObject):
                continue
            target = [n for n in
                      self.ring.preference_list(ident, placement.ref.rf)]
            if target == placement.replicas:
                continue
            source = self.nodes.get(placement.replicas[0])
            if source is None or not source.alive:
                continue
            container = source.containers.get(ident)
            if container is None:
                continue
            container.lock.acquire()
            try:
                current_thread().sleep(timings.transfer_per_object)
                if self.membership.view.view_id != view.view_id:
                    return
                if not source.alive or container.dead:
                    continue
                for name in target:
                    if name not in placement.replicas:
                        copy = (ship(container.instance)
                                if self.copy_instances
                                else container.instance)
                        # The session table migrates with the object:
                        # a client retrying against the new owner must
                        # still find its cached replies.
                        sessions = (ship(container.sessions)
                                    if self.copy_instances
                                    else container.sessions)
                        self.nodes[name].host(ident, copy,
                                              sessions=sessions)
                old_replicas = list(placement.replicas)
                placement.replicas = list(target)
                placement.version += 1
                for name in old_replicas:
                    if name not in target:
                        self.nodes[name].evict(ident)
                self.stats.rebalanced_objects += 1
            finally:
                # Guarded, not unconditional: if the source node died
                # mid-transfer its crash handler may have released the
                # parked waiters (and this thread with them), in which
                # case we no longer own the lock and releasing it would
                # raise from a cleanup path.
                if container.lock.held():
                    container.lock.release()

    def _primary_instance(self, placement: Placement) -> Any:
        node = self.nodes.get(placement.replicas[0])
        if node is None:
            return None
        container = node.containers.get(placement.ref.ident)
        return container.instance if container else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def placement_of(self, ref: DsoReference) -> tuple[str, ...]:
        placement = self._placements.get(ref.ident)
        if placement is None:
            raise NoSuchObjectError(f"{ref} does not exist")
        return tuple(placement.replicas)

    def object_counts(self) -> dict[str, int]:
        return {name: node.object_count()
                for name, node in self.nodes.items() if node.alive}
