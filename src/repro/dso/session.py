"""Replicated client sessions: exactly-once method shipping.

The paper's fault-tolerance story (Section 4.4) retries failed
invocations with the identical input and leaves idempotence to the
application.  This module lifts the guarantee into the DSO layer: every
shipped invocation carries a :class:`SessionStamp` — a deterministic
``(session id, sequence number)`` pair plus the client's
acknowledgement watermark — and every :class:`ObjectContainer` keeps a
:class:`SessionTable` mapping sessions to the replies already produced
for them.  A retransmission (a client retry after a crash, timeout, or
failover to a new consistent-hash owner) finds its stamp in the table
and receives the *cached* reply instead of re-executing the method.

The table is part of the object's replicated state: it is recorded at
every backup during SMR replication, shipped with the instance during
rebalancing, and included in passivation snapshots — so duplicate
suppression survives node failures, view changes, and migration.

Two kinds of session exist:

* **thread sessions** (one per calling simulated thread, created
  lazily) acknowledge each reply as the next invocation is stamped,
  letting servers truncate everything at or below the watermark; a
  thread session therefore occupies one table slot per object it
  touched, holding at most one unacknowledged reply.
* **named sessions** (``DsoLayer.session(name)`` /
  :class:`repro.core.idempotency.IdempotentStep`) never advance their
  watermark and restart their sequence from zero on re-entry, so
  re-running the same deterministic code block *replays* the original
  stamps and collects the original replies — whole blocks become
  safely re-executable.  They are retired explicitly (or evicted by
  the table cap).

Identifiers are drawn from per-layer counters and the caller-supplied
names — never from wall-clock time or process-global state — so a
fixed kernel seed yields byte-identical session ids, traces included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SessionReplayError


@dataclass(frozen=True)
class SessionStamp:
    """What a stamped invocation carries on the wire."""

    #: Session identity (deterministic; see module docstring).
    sid: str
    #: Per-session sequence number of this invocation.
    seq: int
    #: Highest sequence number whose reply the client has received.
    #: Servers may forget everything at or below it.  Named sessions
    #: pin this at -1 so their replies survive for replay.
    acked: int = -1


@dataclass
class _ClientSession:
    """Client-side sequence/watermark state of one session."""

    sid: str
    named: bool = False
    next_seq: int = 0
    acked: int = -1

    def stamp(self) -> SessionStamp:
        seq = self.next_seq
        self.next_seq = seq + 1
        return SessionStamp(sid=self.sid, seq=seq, acked=self.acked)

    def acknowledge(self, seq: int) -> None:
        """Record receipt of ``seq``'s reply (no-op for named
        sessions, whose replies must remain replayable)."""
        if not self.named and seq > self.acked:
            self.acked = seq


@dataclass
class SessionEntry:
    """One remembered reply: the server-side dedup record."""

    reply: Any
    #: True once the op is known stable at every replica (set by the
    #: primary after SMR replication completed, or immediately for
    #: unreplicated objects).  A dedup hit on an uncommitted entry
    #: re-runs replication — which backups in turn deduplicate — so a
    #: cached acknowledgement never weakens durability.
    committed: bool = False
    #: Non-``None`` while this reply must survive LRU eviction no
    #: matter how cold its session goes: a transaction prepare's dedup
    #: record is pinned under its txn id until the commit or abort
    #: resolves it (:meth:`SessionTable.unpin`).  Evicting it earlier
    #: would let a crashed-and-retried prepare re-execute under a
    #: fresh entry, breaking exactly-once commit.
    pin: str | None = None


@dataclass
class _SessionState:
    """Per-session server-side state inside one container's table."""

    #: Highest sequence number ever recorded for this session here.
    last_seq: int = -1
    #: seq -> entry, pruned by the acknowledgement watermark.
    replies: dict[int, SessionEntry] = field(default_factory=dict)


class SessionTable:
    """Per-container map of client sessions to cached replies.

    Plain data (picklable): tables travel inside ``ship()`` during
    rebalancing and passivation exactly like the object instance they
    guard.
    """

    def __init__(self, limit: int = 4096):
        self.limit = limit
        self._sessions: dict[str, _SessionState] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def entry_count(self) -> int:
        return sum(len(s.replies) for s in self._sessions.values())

    def lookup(self, stamp: SessionStamp) -> SessionEntry | None:
        """The cached entry for ``stamp``, or ``None`` if the call is
        new.  Raises :class:`SessionReplayError` for sequence numbers
        the table has already truncated — a protocol violation.
        """
        state = self._sessions.get(stamp.sid)
        if state is None:
            return None
        self._touch(stamp.sid)
        entry = state.replies.get(stamp.seq)
        if entry is not None:
            return entry
        if stamp.seq <= min(state.last_seq, stamp.acked):
            raise SessionReplayError(
                f"session {stamp.sid!r} replayed acknowledged seq "
                f"{stamp.seq} (watermark {stamp.acked})")
        return None

    def record(self, stamp: SessionStamp, reply: Any,
               committed: bool, pin: str | None = None) -> SessionEntry:
        """Remember ``reply`` for ``stamp`` and prune acknowledged
        predecessors.  A ``pin`` token exempts the entry (and its
        session) from LRU eviction until :meth:`unpin` releases it.
        """
        state = self._sessions.get(stamp.sid)
        if state is None:
            state = self._sessions[stamp.sid] = _SessionState()
        self._touch(stamp.sid)
        entry = SessionEntry(reply=reply, committed=committed, pin=pin)
        state.replies[stamp.seq] = entry
        state.last_seq = max(state.last_seq, stamp.seq)
        self.truncate(stamp)
        self._evict()
        return entry

    def unpin(self, token: str) -> int:
        """Release every entry pinned under ``token``; returns how
        many were held.  Called when the pinning transaction's commit
        or abort resolves — only then may LRU pressure reclaim the
        prepare's dedup record."""
        released = 0
        for state in self._sessions.values():
            for entry in state.replies.values():
                if entry.pin == token:
                    entry.pin = None
                    released += 1
        return released

    def pinned_tokens(self) -> set[str]:
        """Distinct pin tokens currently held (test introspection)."""
        return {entry.pin for state in self._sessions.values()
                for entry in state.replies.values()
                if entry.pin is not None}

    def truncate(self, stamp: SessionStamp) -> None:
        """Drop this session's replies at or below the watermark."""
        state = self._sessions.get(stamp.sid)
        if state is None or stamp.acked < 0:
            return
        for seq in [s for s in state.replies if s <= stamp.acked]:
            del state.replies[seq]

    def retire(self, sid: str) -> bool:
        """Forget a session entirely (explicit GC for named
        sessions)."""
        return self._sessions.pop(sid, None) is not None

    def _touch(self, sid: str) -> None:
        # dict preserves insertion order; re-inserting keeps the table
        # ordered by recency so eviction hits the coldest session.
        state = self._sessions.pop(sid)
        self._sessions[sid] = state

    def _evict(self) -> None:
        if len(self._sessions) <= self.limit:
            return
        # Eviction preference, cheapest information loss first:
        # (1) a session retaining no replies (fully acknowledged);
        # (2) the coldest session whose retained replies are all
        #     committed — a retransmission would re-execute the
        #     lookup, but every replica already holds the op;
        # (3) only as a last resort, the coldest session holding an
        #     *uncommitted* reply, whose retransmission could
        #     re-replicate — the standard bounded-table tradeoff.
        # A session holding any *pinned* entry (an unresolved txn
        # prepare) is never a candidate: losing its dedup record could
        # double-apply a retried commit.  If every session is pinned
        # the table transiently exceeds its cap — unpin resolves it.
        # Size the cap generously.
        victim = None
        committed_victim = None
        fallback = None
        for sid, state in self._sessions.items():
            if any(entry.pin is not None
                   for entry in state.replies.values()):
                continue
            if fallback is None:
                fallback = sid
            if not state.replies:
                victim = sid
                break
            if committed_victim is None and all(
                    entry.committed for entry in state.replies.values()):
                committed_victim = sid
        if victim is None:
            victim = (committed_victim if committed_victim is not None
                      else fallback)
        if victim is None:
            return  # every session pinned: defer eviction to unpin
        del self._sessions[victim]

    def merge_from(self, other: "SessionTable") -> None:
        """Adopt sessions from ``other`` that this table lacks.

        Used when rebalancing hosts an object on a node that already
        held a (stale) replica: remembered replies must never be
        forgotten by a transfer.
        """
        for sid, state in other._sessions.items():
            mine = self._sessions.get(sid)
            if mine is None:
                self._sessions[sid] = state
            else:
                for seq, entry in state.replies.items():
                    mine.replies.setdefault(seq, entry)
                mine.last_seq = max(mine.last_seq, state.last_seq)

    def sessions(self) -> list[str]:
        """Session ids currently remembered (test introspection)."""
        return list(self._sessions)
