"""DSO server nodes: object containers, per-object locks, parking.

Each node hosts *containers*: the object instance, the per-object
mutual-exclusion lock that makes method invocations linearizable, and
any server-side conditions the object uses (synchronization objects
block callers with wait/notify, Section 5).

When a node crashes, every parked waiter on its objects is released
with an error, and the containers are marked dead so late arrivals
fail fast.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.node import Node
from repro.dso.cache import LeaseTable
from repro.dso.session import SessionTable
from repro.errors import NodeCrashedError
from repro.net.network import Network
from repro.simulation.kernel import Kernel
from repro.simulation.primitives import Condition, Lock


class DsoCall:
    """Tracks one in-progress method invocation at its primary replica.

    Owns (at most) the container's object lock and one node worker
    slot; :class:`ServerCondition` releases and re-acquires both when
    the object parks the caller.
    """

    def __init__(self, container: "ObjectContainer"):
        self.container = container
        self.lock_held = False
        self.worker_held = False
        self.aborted = False

    def acquire(self) -> None:
        """Object lock first (linearization order), then a worker."""
        self.container.lock.acquire()
        self.lock_held = True
        self.container.node.node.workers.acquire()
        self.worker_held = True

    def release_worker(self) -> None:
        """Free the worker slot while keeping the object lock.

        Used before cross-node work (SMR replication): holding a
        worker on node A while queueing for a worker on node B would
        deadlock two saturated nodes replicating toward each other.
        """
        if self.worker_held:
            self.container.node.node.workers.release()
            self.worker_held = False

    def release(self) -> None:
        self.release_worker()
        if self.lock_held:
            self.container.lock.release()
            self.lock_held = False


class ServerCondition:
    """A wait/notify condition owned by a server-side object.

    Synchronization objects (barrier, semaphore, future) block calls on
    these; the container releases every waiter with
    :class:`NodeCrashedError` if the hosting node dies.
    """

    def __init__(self, container: "ObjectContainer"):
        self.container = container
        self._condition = Condition(container.node.kernel)
        container._conditions.append(self)

    def wait(self, call: DsoCall) -> None:
        """Park ``call`` until notified (Java's ``Object.wait()``).

        Releases the object lock and the worker slot while parked; on
        wake, re-acquires both — unless the node died, in which case
        the waiter aborts with :class:`NodeCrashedError`.
        """
        call.release()
        container = self.container
        with container.node.kernel.tracer.span(
                "dso.wait", kind="server", endpoint=container.node.name,
                attributes={"object": "/".join(container.key)}):
            with self._condition:
                self._condition.wait()
            if container.dead:
                call.aborted = True
                raise NodeCrashedError(
                    f"{container.node.name} crashed while a caller "
                    f"waited on {container.key}")
        call.acquire()

    def notify_all(self) -> None:
        with self._condition:
            self._condition.notify_all()

    def waiter_count(self) -> int:
        return len(self._condition._waiters)


class ObjectContainer:
    """One replica of one shared object on one node.

    Besides the instance and its linearization lock, every container
    carries the :class:`SessionTable` that makes shipped invocations
    exactly-once: retransmissions find their cached reply here instead
    of re-executing (see :mod:`repro.dso.session`).

    Transactional objects (:class:`repro.dso.txn.TxnCell`) add two
    pieces of container-scoped soft state: the instance's ``prepared``
    map (primary-local — ``__txn_prepare__`` is unreplicated, so a
    promoted backup starts with it empty and the commit fence catches
    retries whose prepare died with the old primary) and *pinned*
    session entries (the prepare's dedup record is pinned until the
    transaction resolves, so LRU pressure can never evict the evidence
    that a commit retry needs — see :meth:`pinned_txns`).
    """

    def __init__(self, node: "DsoNode", key: tuple[str, str], instance: Any,
                 sessions: SessionTable | None = None,
                 session_limit: int = 4096):
        self.node = node
        self.key = key
        self.instance = instance
        self.lock = Lock(node.kernel)
        self.dead = False
        self.applied_ops = 0
        self.sessions = sessions if sessions is not None \
            else SessionTable(limit=session_limit)
        #: Outstanding client read leases (primary side; deliberately
        #: not replicated — see repro.dso.cache).  Fresh on every
        #: host(), so a promoted or rebalanced replica starts with no
        #: leases and the placement-version bump voids the old ones.
        self.leases = LeaseTable()
        self._conditions: list[ServerCondition] = []

    def condition(self) -> ServerCondition:
        return ServerCondition(self)

    def pinned_txns(self) -> set[str]:
        """Transaction ids with an unresolved prepare at this replica.

        Union of the instance's ``prepared`` soft state and the pinned
        session entries; tests use this to assert that the pin set
        drains once every transaction commits or aborts.
        """
        txns = set(self.sessions.pinned_tokens())
        prepared = getattr(self.instance, "prepared", None)
        if prepared:
            txns.update(prepared)
        return txns

    def mark_dead(self) -> None:
        self.dead = True
        self.leases.clear()
        for condition in self._conditions:
            condition.notify_all()


class DsoNode:
    """A DSO storage server."""

    def __init__(self, kernel: Kernel, network: Network, name: str,
                 workers: int = 8, session_limit: int = 4096):
        self.kernel = kernel
        self.node = Node(kernel, network, name, workers=workers)
        self.containers: dict[tuple[str, str], ObjectContainer] = {}
        self.session_limit = session_limit
        #: Service-time multiplier; the chaos layer raises it to model
        #: a degraded node (noisy neighbour, GC storm, EBS stall).
        self.slow_factor: float = 1.0

    def set_slow(self, factor: float) -> None:
        """Stretch every service time on this node by ``factor``."""
        if factor <= 0:
            raise ValueError(f"slow factor must be positive: {factor}")
        self.slow_factor = factor

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def alive(self) -> bool:
        return self.node.alive

    def host(self, key: tuple[str, str], instance: Any,
             sessions: SessionTable | None = None) -> ObjectContainer:
        """Host a replica; ``sessions`` carries the exactly-once table
        when the object (and its dedup state) migrates here."""
        previous = self.containers.get(key)
        container = ObjectContainer(self, key, instance, sessions=sessions,
                                    session_limit=self.session_limit)
        if previous is not None and not previous.dead:
            # Re-hosting over a live replica (rebalance converging):
            # never forget remembered replies.
            container.sessions.merge_from(previous.sessions)
        self.containers[key] = container
        return container

    def evict(self, key: tuple[str, str]) -> None:
        self.containers.pop(key, None)

    def crash(self) -> None:
        """Fail-stop: lose every hosted object and release waiters."""
        self.node.crash()
        for container in list(self.containers.values()):
            container.mark_dead()
        self.containers.clear()

    def object_count(self) -> int:
        return len(self.containers)
