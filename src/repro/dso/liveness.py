"""Lease heartbeats: client-side liveness plumbing for leased state.

A *lease* is server-side state that stays valid only while its holder
keeps renewing it — the keeper's sessions (ephemeral znodes die with
the lease) are the flagship user, but the shape is generic: any
client that must prove liveness to a remote object runs a
:class:`HeartbeatPump`.

The pump is deliberately dumb.  It calls ``beat()`` every ``period``
seconds from a daemon simulation thread and stops itself the first
time the beat raises — a lapsed lease must *stay* lapsed, because the
server may already have given the holder's state away (exactly the
ZooKeeper session rule).  Chaos tests call :meth:`kill` to model a
holder that fail-stops between beats: no further renewals, no
goodbye, the lease simply runs out.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simulation.thread import SimThread, spawn


def lease_beat_period(ttl: float) -> float:
    """The renewal cadence for a lease of ``ttl`` seconds.

    A third of the TTL survives two lost/late beats before the lease
    lapses — the standard safety margin (ZooKeeper pings at a third
    of the session timeout).
    """
    return ttl / 3.0


class HeartbeatPump:
    """Renews a lease until stopped, killed, or the lease rejects it.

    ``beat`` is called every ``period`` seconds; its first exception
    (typically ``SessionExpiredError`` from the server) permanently
    stops the pump and is kept in :attr:`failure` for inspection.
    """

    def __init__(self, period: float, beat: Callable[[], Any], *,
                 name: str = "heartbeat"):
        if period <= 0:
            raise ValueError("heartbeat period must be positive")
        self.period = period
        self._beat = beat
        self._alive = True
        #: The exception that stopped the pump, if any.
        self.failure: BaseException | None = None
        #: Successful renewals so far.
        self.beats = 0
        self._thread: SimThread = spawn(self._loop, name=name, daemon=True)

    # -- lifecycle --------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the pump is still renewing."""
        return self._alive

    def stop(self) -> None:
        """Graceful stop: no further beats (the holder says goodbye
        elsewhere, e.g. by closing its session)."""
        self._alive = False

    def kill(self) -> None:
        """Chaos stop: the holder fail-stops between beats.  The lease
        is left to run out on the server."""
        self._alive = False

    # -- the pump ----------------------------------------------------------------

    def _loop(self) -> None:
        while self._alive:
            self._thread.sleep(self.period)
            if not self._alive:
                return
            try:
                self._beat()
            except BaseException as exc:  # noqa: BLE001 — lease verdicts vary
                self.failure = exc
                self._alive = False
                return
            self.beats += 1
