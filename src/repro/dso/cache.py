"""Lease-based client-side caching for the DSO read path.

Every DSO read normally pays a full client -> primary round trip, so
read-heavy workloads (Fig. 8 inference serving, Fig. 5 centroid
fetches) are bounded by network latency.  This module adapts the two
levers the stateful-FaaS literature identifies — function-host caching
with a coherence protocol (Cloudburst, arXiv:2001.04592) and
lease/watch-style invalidation (FaaSKeeper, arXiv:2203.14859) — to
Crucial's method-shipping model:

* Shared-object classes mark side-effect-free methods with
  :func:`readonly` (``KvSlot.get`` and the read methods of the Table 1
  built-ins are pre-marked).
* When the read cache is enabled (``DsoLayer(read_cache=True)`` — it
  is **off by default**, preserving the paper's always-ship model and
  the Table 2 calibration), a read-only invocation that reaches the
  primary returns a *lease*: a snapshot of the object plus a validity
  window of ``DsoTimings.lease_ttl`` virtual seconds.  The client
  caches the snapshot per execution site (one :class:`ObjectCache` per
  FaaS container endpoint) and serves subsequent read-only invocations
  locally while the lease is valid.
* The primary tracks outstanding leases in a :class:`LeaseTable` on
  the :class:`~repro.dso.server.ObjectContainer`.  Any mutating
  invocation revokes them **before acknowledging**: an invalidation
  message is sent to each holder (charged to the writer, like any
  transfer), and an unreachable holder is waited out to its lease
  expiry — so no cached read can be served after a write is
  acknowledged.
* Leases are additionally bound to the placement *version*: failover,
  rebalancing, and restore all bump it, so a promoted backup — which
  cannot know the leases its dead predecessor granted — conservatively
  revokes all of them (no write is acknowledged by a new primary under
  a placement version for which any lease was cut).
* Cache lifetime equals container lifetime: the FaaS platform reports
  reclaimed containers (keep-alive expiry or chaos kill) and the layer
  drops their caches, so warm containers keep their working set and
  cold starts begin empty.

Linearizability argument: a cached read linearizes at its local
cache-consult instant.  While a lease is valid at version ``v``, any
conflicting write either (a) executes at the same primary, which
revokes the lease before acknowledging, or (b) executes at a different
primary, which requires a placement-version bump that invalidates the
entry first.  Either way no read observes a value older than the
latest acknowledged write.  ``tests/linearizability/test_cached_reads``
checks exactly this on recorded histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


def readonly(method: Callable) -> Callable:
    """Mark a shared-object method as side-effect-free.

    Read-only methods are eligible to be served from a leased client
    cache (when the layer enables it) instead of being shipped to the
    primary.  Marking a mutating method ``readonly`` voids the
    coherence guarantee — the marker is a promise, exactly like the
    determinism requirement SMR places on replicated methods.
    """
    method.__dso_readonly__ = True
    return method


def is_readonly(cls: type, method: str) -> bool:
    """Whether ``method`` on ``cls`` is marked with :func:`readonly`.

    The creation ping ``__dso_touch__`` is treated as read-only (it
    never mutates), so it does not revoke leases; it is still never
    served from a cache (there is nothing to apply locally).
    """
    if method == "__dso_touch__":
        return True
    return bool(getattr(getattr(cls, method, None),
                        "__dso_readonly__", False))


@dataclass
class LeaseGrant:
    """What a lease-granting reply carries back over the wire."""

    #: Snapshot of the object at grant time (wire-copied by the reply
    #: transfer, so it never aliases the primary's live instance).
    snapshot: Any
    #: Virtual time at which the lease self-expires.
    expiry: float
    #: Placement version the lease is bound to; any failover /
    #: rebalance / restore bumps it and voids the lease.
    version: int


@dataclass
class CacheEntry:
    """One leased snapshot in a client-side :class:`ObjectCache`."""

    snapshot: Any
    expiry: float
    version: int


class LeaseTable:
    """Outstanding read leases of one object container (primary side).

    Maps holder endpoint -> lease expiry (virtual time).  Plain data,
    deliberately *not* replicated: a promoted backup starts with an
    empty table and relies on the placement-version bump to invalidate
    every lease its predecessor granted.
    """

    def __init__(self) -> None:
        self._holders: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._holders)

    def grant(self, holder: str, expiry: float) -> None:
        current = self._holders.get(holder, 0.0)
        self._holders[holder] = max(current, expiry)

    def active(self, now: float) -> list[tuple[str, float]]:
        """Holders whose leases have not yet expired, with expiries."""
        return [(holder, expiry) for holder, expiry
                in self._holders.items() if expiry > now]

    def clear(self) -> None:
        self._holders.clear()

    def holders(self) -> list[str]:
        return list(self._holders)


class ObjectCache:
    """Per-execution-site cache of leased object snapshots.

    One instance exists per endpoint that performed cacheable reads
    (the client process, or one per FaaS container); eviction is LRU
    over the ``cache_max_objects`` knob.  Entries self-expire with
    their lease and are additionally dropped by revocation messages,
    placement-version mismatches, and container reclamation.
    """

    def __init__(self, limit: int = 256):
        self.limit = limit
        self._entries: dict[tuple[str, str], CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, ident: tuple[str, str]) -> CacheEntry | None:
        entry = self._entries.get(ident)
        if entry is not None:
            # dict preserves insertion order; re-inserting keeps the
            # cache ordered by recency so eviction hits the coldest.
            del self._entries[ident]
            self._entries[ident] = entry
        return entry

    def put(self, ident: tuple[str, str], entry: CacheEntry) -> None:
        self._entries.pop(ident, None)
        self._entries[ident] = entry
        while len(self._entries) > self.limit:
            del self._entries[next(iter(self._entries))]

    def invalidate(self, ident: tuple[str, str]) -> bool:
        return self._entries.pop(ident, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def idents(self) -> list[tuple[str, str]]:
        return list(self._entries)
