"""Read-atomic multi-object transactions on the DSO layer.

The paper's consistency story is strictly per-object: each DSO is
linearizable in isolation, and a crash between two writes leaves
readers seeing *fractured* state (half of a logical multi-object
update).  This module layers AFT-style read-atomic transactions
("A Fault-Tolerance Shim for Serverless Computing", Sreekanti et al.)
on top of the existing exactly-once machinery — a deliberate
deviation from the paper, documented in DESIGN.md §14.

The moving parts:

* :class:`TxnCell` — the transactional shared object: a versioned
  value cell.  Committed versions carry the *commit id* (``cid``) and
  the full write set of the writing transaction, exactly the metadata
  RAMP/AFT attach to each version; a bounded history of committed
  versions (``DsoTimings.txn_history``) lets readers fall back to an
  older version to preserve atomic visibility.  Prepared (pre-commit)
  versions live in ``prepared`` and are installed — or discarded — by
  the commit/abort half of the protocol.

* :class:`Txn` — the client-side transaction: a per-txn write buffer
  (read-your-writes), a read set of ``(key -> cid, writeset)``
  observations, and read-set validation that only ever returns
  versions forming an atomic-visibility snapshot: having observed a
  write of transaction *T*, a reader can never observe a pre-*T*
  version of any other key *T* wrote (and symmetrically never a
  *newer* sibling of an already-read older version — the interactive
  generalization of RAMP's two-round algorithm).  When the newest
  committed version is too old (a sibling commit is still in flight)
  the reader *force-fetches* the prepared entry, which is safe
  exactly because a committed sibling proves the commit point passed.

* The two-phase commit: ``prepare`` every written key (batched
  through the PR 6 pipeline, so same-primary keys share one round
  trip), adopt one commit id, then ``commit`` every key (batched
  again).  Prepare and abort are :func:`unreplicated` — prepared
  state is primary-local and dies with the primary; commit carries
  the full ``(cid, value, writeset)`` payload and installs
  idempotently-by-cid at the primary *and* its SMR backups, so
  acknowledged transactions meet the same rf>=2 durability contract
  as single ops.

* The **commit fence**: a commit arriving at a primary that holds no
  prepared entry for the transaction (a crash-failover promoted a
  backup that never saw the unreplicated prepare) is rejected with
  :class:`~repro.errors.TxnPrepareLostError` *before* anything is
  installed; the client re-prepares at the new primary and retries.
  Commits are additionally fenced client-side by the placement
  version recorded at prepare time.  Disabling the fence
  (``REPRO_TEST_NO_COMMIT_FENCE=1``, mutation testing only) silently
  drops such writes — producing exactly the fractured, half-committed
  state the exploration fuzzer is required to find
  (``tests/explore/test_txn_hunter.py``).

Exactly-once commit falls out of the existing session machinery: every
prepare/commit op is a stamped invocation deduplicated end-to-end
through the replicated :class:`~repro.dso.session.SessionTable`, the
transaction id is derived from the session (so a named-session replay
re-issues the *same* transaction), and installation is idempotent by
commit id.  Prepare dedup records are *pinned* in the session table
until the commit or abort resolves them, so LRU pressure can never
evict the one record that makes a retried commit exactly-once.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.dso.cache import readonly
from repro.dso.reference import DsoReference
from repro.errors import (
    CloudError,
    TxnAbortedError,
    TxnError,
    TxnFracturedReadError,
    TxnPrepareLostError,
)
from repro.linearizability.atomicity import TxnCommitRecord, TxnReadRecord
from repro.simulation.kernel import current_thread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dso.layer import DsoLayer


def unreplicated(method: Callable) -> Callable:
    """Mark a shared-object method as primary-local (never SMR'd).

    The replication round is skipped even for rf>=2 objects: the
    method's effect deliberately does *not* survive a primary crash.
    Transaction prepares use this — a prepared version is soft state
    that the commit fence re-creates after failover — so a prepare
    costs one round trip instead of an SMR round.
    """
    method.__dso_unreplicated__ = True
    return method


def is_unreplicated(cls: type, method: str) -> bool:
    """Whether ``method`` on ``cls`` is marked :func:`unreplicated`."""
    return bool(getattr(getattr(cls, method, None),
                        "__dso_unreplicated__", False))


def _commit_fence_disabled() -> bool:
    """Mutation-test hook: ``REPRO_TEST_NO_COMMIT_FENCE=1`` makes a
    commit whose prepared entry is missing (lost in a crash-failover)
    silently succeed *without installing anything*, instead of raising
    :class:`TxnPrepareLostError` for client-side re-prepare.  The
    acknowledged write is dropped at that key — a permanent fractured
    state.  Exists solely to prove the exploration fuzzer detects the
    resulting read-atomicity violation (``tests/explore/
    test_txn_hunter.py``); never set outside tests.
    """
    return os.environ.get("REPRO_TEST_NO_COMMIT_FENCE", "") == "1"


class TxnCell:
    """A transactional value cell: the unit of read-atomic storage.

    State is plain data (pickles through ``ship()``): ``versions`` is
    the bounded, cid-ordered committed history — each entry a
    ``(cid, value, writeset)`` triple, seeded with ``(0, initial,
    ())`` — and ``prepared`` maps transaction ids to not-yet-committed
    triples.  All mutators are deterministic functions of their
    arguments, as SMR requires; ``__txn_commit__`` in particular
    carries its full payload so a backup installs the identical
    version without ever having seen the prepare.
    """

    def __init__(self, value: Any = None, history: int = 8):
        self.history_limit = max(1, int(history))
        self.versions: list[tuple[int, Any, tuple]] = [(0, value, ())]
        self.prepared: dict[str, tuple[int, Any, tuple]] = {}

    @readonly
    def get(self) -> Any:
        """The latest committed value (plain, non-transactional read
        — the interop surface ``read_bulk``/``invoke`` see)."""
        return self.versions[-1][1]

    @readonly
    def latest_cid(self) -> int:
        """Commit id of the latest committed version."""
        return self.versions[-1][0]

    @readonly
    def __txn_read__(self) -> dict:
        """Snapshot for a transactional read: the committed history
        plus the prepared map, from which the client's read-set
        validation picks an atomic-visibility version."""
        return {"versions": list(self.versions),
                "prepared": dict(self.prepared)}

    @unreplicated
    def __txn_prepare__(self, txn_id: str, cid: int, value: Any,
                        writeset: Iterable[str]) -> int:
        """Phase one: stage ``value`` under ``txn_id``.  Primary-local
        (see :func:`unreplicated`); overwriting an earlier prepare of
        the same transaction is the idempotent-retry path.  Returns
        the cid recorded, which the client adopts — a deduplicated
        replay therefore converges on the original commit id."""
        self.prepared[txn_id] = (cid, value, tuple(writeset))
        return cid

    def __txn_commit__(self, txn_id: str, cid: int, value: Any,
                       writeset: Iterable[str]) -> int:
        """Phase two: discard the prepared entry and install the
        version, idempotently by cid.  Replicated: backups install
        from the arguments alone."""
        self.prepared.pop(txn_id, None)
        self._install(cid, value, tuple(writeset))
        return cid

    @unreplicated
    def __txn_abort__(self, txn_id: str) -> bool:
        """Drop ``txn_id``'s prepared entry, if any."""
        return self.prepared.pop(txn_id, None) is not None

    def _install(self, cid: int, value: Any, writeset: tuple) -> None:
        if any(c == cid for c, _, _ in self.versions):
            return  # already installed (commit retry / SMR re-send)
        self.versions.append((cid, value, writeset))
        self.versions.sort(key=lambda v: v[0])
        if len(self.versions) > self.history_limit:
            del self.versions[:len(self.versions) - self.history_limit]


class Txn:
    """One interactive read-atomic transaction (client side).

    Obtained from ``DsoLayer.transaction(client)`` or
    ``env.transaction()``; :meth:`read`/:meth:`write` operate on
    string keys naming :class:`TxnCell` objects, :meth:`invoke`
    defers an arbitrary DSO invocation to commit time.  ``commit``
    runs the two-phase protocol; ``abort`` discards everything.  The
    context manager commits on clean exit and aborts on exception.
    """

    def __init__(self, layer: "DsoLayer", client: str, rf: int = 1):
        self._layer = layer
        self._client = client
        self._rf = rf
        self.status = "open"
        self.txn_id: str | None = None
        self.cid: int | None = None
        self._writes: dict[str, Any] = {}
        self._reads: dict[str, tuple[int, tuple]] = {}
        self._read_values: dict[str, Any] = {}
        self._deferred: list[tuple] = []
        self._prepare_versions: dict[str, int] = {}

    # -- application surface ------------------------------------------------

    def read(self, key: str) -> Any:
        """Read ``key`` under atomic visibility.

        Buffered writes win (read-your-writes), then previously read
        values (repeatable reads), then a shipped snapshot validated
        against the read set.  When no version of ``key`` is
        consistent with the versions already observed, the read
        backs off and re-fetches — a sibling commit is in flight —
        and past the retry deadline the transaction aborts with
        :class:`TxnFracturedReadError` rather than ever returning
        fractured data.
        """
        self._check_open()
        if key in self._writes:
            return self._writes[key]
        if key in self._read_values:
            return self._read_values[key]
        layer = self._layer
        ref = layer._txn_ref(key, self._rf)
        deadline = layer.kernel.now + layer._retry_deadline_pad()
        attempts = 0
        while True:
            snap = layer.invoke(self._client, ref, "__txn_read__",
                                ctor=layer._txn_ctor())
            chosen = self._choose_version(key, snap)
            if chosen is not None:
                cid, value, writeset = chosen
                self._reads[key] = (cid, tuple(writeset))
                self._read_values[key] = value
                return value
            attempts += 1
            layer.stats.txn_read_retries += 1
            cache = layer._caches.get(self._client)
            if cache is not None:
                # A lease-cached snapshot would just replay the same
                # stale history; force the next fetch to ship.
                cache.invalidate(ref.ident)
            if layer.kernel.now >= deadline:
                self.abort()
                raise TxnFracturedReadError(
                    f"txn read of {key!r}: no version consistent with "
                    f"the read set after {attempts} attempts "
                    f"(observed {sorted(self._reads)})")
            delay = layer._retry_delay(attempts - 1)
            current_thread().sleep(
                min(delay, deadline - layer.kernel.now))

    def write(self, key: str, value: Any) -> None:
        """Buffer a write; visible to this txn's reads immediately,
        to others only after :meth:`commit` — all writes or none."""
        self._check_open()
        self._writes[key] = value

    def invoke(self, ref: DsoReference, method: str, args: tuple = (),
               kwargs: dict | None = None, ctor: tuple | None = None,
               cost: float = 0.0) -> None:
        """Defer an arbitrary DSO invocation to commit time.

        Deferred invocations run *after* the write set is installed,
        as ordinary exactly-once stamped invocations: they happen iff
        the transaction commits, exactly once under retries, but they
        are **not** atomically visible with the write set (only
        :class:`TxnCell` writes get read-atomic visibility).
        """
        self._check_open()
        self._deferred.append((ref, method, tuple(args),
                               dict(kwargs or {}), ctor, cost))

    def commit(self) -> None:
        """Run the two-phase commit; returns with every write durably
        installed (and deferred invocations executed), or raises.

        Failures *before* the commit point (a prepare that cannot be
        placed) abort cleanly with :class:`TxnAbortedError`.  After
        every key acknowledged its prepare the transaction must
        commit: fence rejections trigger re-prepare + retry, bounded
        by the layer's retry deadline.
        """
        self._check_open()
        layer = self._layer
        if not self._writes and not self._deferred:
            self.status = "committed"
            layer.stats.txns_committed += 1
            self._record_reads()
            return
        session = layer._session_for(self._client)
        # Derived from the session, not a counter: a named-session
        # replay (sequence restarts at 0) re-issues the identical
        # transaction id, so its prepares and commits deduplicate.
        self.txn_id = f"{session.sid}+t{session.next_seq}"
        writeset = tuple(sorted(self._writes))
        with layer.kernel.tracer.span(
                "dso.txn_commit", kind="client", endpoint=self._client,
                attributes={"txn": self.txn_id, "writes": len(writeset),
                            "deferred": len(self._deferred)}):
            if writeset:
                proposed = next(layer._txn_cids)
                try:
                    cid = self._prepare_all(proposed, writeset)
                except TxnError:
                    self.abort()
                    raise
                except CloudError as exc:
                    self.abort()
                    raise TxnAbortedError(
                        f"txn {self.txn_id} aborted: prepare failed "
                        f"({exc})") from exc
                # ---- commit point: every key holds a prepared entry.
                self.cid = cid
                self._commit_all(cid, writeset)
            self.status = "committed"
            layer.stats.txns_committed += 1
            if writeset:
                layer.txn_log.append(
                    TxnCommitRecord(txn_id=self.txn_id, cid=self.cid,
                                    writes=writeset))
            self._record_reads()
            for ref, method, args, kwargs, ctor, cost in self._deferred:
                layer.invoke(self._client, ref, method, args, kwargs,
                             ctor=ctor, cost=cost)

    def abort(self) -> None:
        """Discard the transaction: buffered writes are dropped and
        prepared entries are released (best effort — an unreachable
        primary's prepare dies with it, or is fenced out later)."""
        if self.status != "open":
            return
        self.status = "aborted"
        layer = self._layer
        layer.stats.txns_aborted += 1
        if self.txn_id is not None:
            for key in sorted(self._writes):
                ref = layer._txn_ref(key, self._rf)
                try:
                    layer.invoke(self._client, ref, "__txn_abort__",
                                 args=(self.txn_id,))
                except CloudError:
                    pass
        self._record_reads()

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Txn":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.status == "open":
                self.commit()
        elif self.status == "open":
            self.abort()
        return False

    # -- read-set validation ------------------------------------------------

    def _choose_version(self, key: str, snap: dict
                        ) -> tuple[int, Any, tuple] | None:
        """The newest version of ``key`` that keeps the read set an
        atomic-visibility snapshot, or ``None`` (retry).

        Lower bound: a previously read version whose writer also
        wrote ``key`` forces ``cid >= that writer's cid`` (else we
        would fracture its transaction).  Upper bound: a candidate
        whose writer also wrote an already-read key must not be newer
        than that observation (else the *candidate's* transaction
        fractures).  Prepared entries are eligible only at exactly
        the lower bound — a committed sibling proves that commit
        point passed (RAMP's forced fetch).
        """
        lower = 0
        for rcid, rws in self._reads.values():
            if key in rws and rcid > lower:
                lower = rcid

        def valid(cid: int, writeset: tuple) -> bool:
            if cid < lower:
                return False
            for rkey, (rcid, _) in self._reads.items():
                if rkey in writeset and rcid < cid:
                    return False
            return True

        best = None
        for cid, value, ws in snap["versions"]:
            if valid(cid, ws) and (best is None or cid > best[0]):
                best = (cid, value, ws)
        if best is not None:
            return best
        if lower:
            for cid, value, ws in snap["prepared"].values():
                if cid == lower and valid(cid, ws):
                    self._layer.stats.txn_forced_fetches += 1
                    return (cid, value, ws)
        return None

    # -- two-phase commit ---------------------------------------------------

    def _prepare_all(self, proposed: int, writeset: tuple) -> int:
        """Prepare every written key (one pipelined round, coalesced
        per primary) and adopt a single commit id.

        Replies carry the cid each primary recorded; a deduplicated
        replay returns the *original* cid, so adopting the maximum —
        and re-preparing any key that answered with a lower one —
        converges a partially replayed commit on one id.
        """
        layer = self._layer
        futures = {}
        for key in writeset:
            futures[key] = layer.invoke_async(
                self._client, layer._txn_ref(key, self._rf),
                "__txn_prepare__",
                args=(self.txn_id, proposed, self._writes[key], writeset),
                ctor=layer._txn_ctor())
        layer.flush(self._client)
        replies = {}
        for key, future in futures.items():
            exc = future.exception()
            if exc is not None:
                raise exc
            replies[key] = future.result()
        layer.stats.txn_prepares += len(futures)
        cid = max(replies.values())
        for key in writeset:
            if replies[key] != cid:
                self._reprepare(key, cid, writeset)
            else:
                self._note_version(key)
        return cid

    def _commit_all(self, cid: int, writeset: tuple) -> None:
        """Install every key's write (one pipelined round per pass).

        Client-side fence first: a key whose placement version moved
        since its prepare re-prepares before the commit ships.  A
        server-side fence rejection (:class:`TxnPrepareLostError` —
        the failover raced the version check) re-prepares and retries
        that key, bounded by the retry deadline.
        """
        layer = self._layer
        deadline = layer.kernel.now + layer._retry_deadline_pad()
        pending = list(writeset)
        while True:
            for key in pending:
                ref = layer._txn_ref(key, self._rf)
                placement = layer._placements.get(ref.ident)
                if (placement is None or placement.lost
                        or placement.version
                        != self._prepare_versions.get(key)):
                    self._reprepare(key, cid, writeset)
            futures = {}
            for key in pending:
                futures[key] = layer.invoke_async(
                    self._client, layer._txn_ref(key, self._rf),
                    "__txn_commit__",
                    args=(self.txn_id, cid, self._writes[key], writeset))
            layer.flush(self._client)
            retry: list[str] = []
            fence_exc: TxnPrepareLostError | None = None
            for key, future in futures.items():
                exc = future.exception()
                if exc is None:
                    continue
                if isinstance(exc, TxnPrepareLostError):
                    retry.append(key)
                    fence_exc = exc
                else:
                    raise exc
            if not retry:
                return
            if layer.kernel.now >= deadline:
                raise fence_exc
            for key in retry:
                self._reprepare(key, cid, writeset)
            pending = retry

    def _reprepare(self, key: str, cid: int, writeset: tuple) -> None:
        layer = self._layer
        layer.invoke(self._client, layer._txn_ref(key, self._rf),
                     "__txn_prepare__",
                     args=(self.txn_id, cid, self._writes[key], writeset),
                     ctor=layer._txn_ctor())
        layer.stats.txn_prepares += 1
        self._note_version(key)

    def _note_version(self, key: str) -> None:
        layer = self._layer
        placement = layer._placements.get(
            layer._txn_ref(key, self._rf).ident)
        self._prepare_versions[key] = (
            placement.version if placement is not None else -1)

    # -- bookkeeping --------------------------------------------------------

    def _check_open(self) -> None:
        if self.status != "open":
            raise TxnAbortedError(
                f"transaction is {self.status}; no further operations")

    def _record_reads(self) -> None:
        if self._reads:
            self._layer.txn_reads.append(TxnReadRecord(
                reader=self.txn_id or f"ro:{self._client}",
                reads=tuple(sorted((key, cid) for key, (cid, _)
                                   in self._reads.items()))))

