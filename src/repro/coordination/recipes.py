"""Classic ZooKeeper recipes over :mod:`repro.coordination.keeper`.

The paper built its barrier and semaphore directly on DSO server
objects; these rebuild both (plus leader election and config
fan-out) on the keeper's znodes, sessions, and ordered watches —
the FaaSKeeper shape, with the standard recipes:

* :class:`KeeperBarrier` — one parent znode per round; each party
  adds an ephemeral-sequential child and leaves when the child
  count reaches the party count (a children watch replaces polling).
* :class:`KeeperSemaphore` — ephemeral-sequential lease nodes; the
  ``permits`` lowest hold the semaphore, everyone else watches.
* :class:`LeaderElector` — the lowest ephemeral-sequential candidate
  leads; each candidate watches only its predecessor, so a failover
  wakes exactly one successor (no herd).
* :class:`ConfigWatcher` — read-with-watch plus re-register on every
  change: the fan-out subscriber for hundreds of watchers.

All waiting loops are watch-driven but *re-check state* on every
wakeup (and on a timeout), so a missed or foreign event — sessions
share one delivery queue — only costs a retry, never correctness.
"""

from __future__ import annotations

from typing import Any

from repro.coordination.keeper import KeeperSession, WatchEvent
from repro.errors import NodeExistsError, NoNodeError

#: Recipes re-check state at least this often while waiting.
_RECHECK = 1.0


def _ensure(session: KeeperSession, path: str) -> None:
    """Create a persistent znode (and its ancestors), tolerating
    concurrent creators."""
    parts = path.strip("/").split("/")
    prefix = ""
    for part in parts:
        prefix = f"{prefix}/{part}"
        try:
            session.create(prefix)
        except NodeExistsError:
            pass


def _seq_suffix(name: str) -> int:
    return int(name[-10:])


class KeeperBarrier:
    """A cyclic rendezvous: round ``n`` completes once ``parties``
    ephemeral-sequential children exist under ``<path>/round-<n>``."""

    def __init__(self, session: KeeperSession, path: str, parties: int):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.session = session
        self.path = path.rstrip("/")
        self.parties = parties
        _ensure(session, self.path)

    def wait(self, round_number: int, timeout: float = 120.0) -> None:
        """Announce arrival and block until the round is full."""
        round_path = f"{self.path}/round-{round_number}"
        try:
            self.session.create(round_path)
        except NodeExistsError:
            pass
        self.session.create(f"{round_path}/p-", data=self.session.sid,
                            ephemeral=True, sequential=True)
        deadline = self.session._service._env.now + timeout
        while True:
            arrived = self.session.children(round_path, watch=True)
            if len(arrived) >= self.parties:
                return
            if self.session._service._env.now >= deadline:
                raise TimeoutError(
                    f"barrier round {round_number}: "
                    f"{len(arrived)}/{self.parties} after {timeout}s")
            self.session.next_event(timeout=_RECHECK)


class KeeperSemaphore:
    """``permits`` concurrent holders via ephemeral-sequential leases."""

    def __init__(self, session: KeeperSession, path: str, permits: int):
        if permits < 1:
            raise ValueError("permits must be >= 1")
        self.session = session
        self.path = path.rstrip("/")
        self.permits = permits
        self._held: str | None = None
        _ensure(session, self.path)

    def acquire(self, timeout: float = 120.0) -> str:
        """Block until this session holds one of the permits; returns
        the lease znode's path."""
        if self._held is not None:
            raise RuntimeError("semaphore already held by this session")
        lease = self.session.create(f"{self.path}/lease-",
                                    data=self.session.sid,
                                    ephemeral=True, sequential=True)
        mine = lease.rsplit("/", 1)[1]
        deadline = self.session._service._env.now + timeout
        while True:
            # children() returns sorted names; zero-padded suffixes
            # make lexicographic order == grant order.
            queue = self.session.children(self.path, watch=True)
            if mine in queue[:self.permits]:
                self._held = lease
                return lease
            if self.session._service._env.now >= deadline:
                raise TimeoutError(f"semaphore {self.path}: "
                                   f"no permit after {timeout}s")
            self.session.next_event(timeout=_RECHECK)

    def release(self) -> None:
        if self._held is None:
            raise RuntimeError("semaphore not held")
        self.session.delete(self._held)
        self._held = None

    def __enter__(self) -> "KeeperSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class LeaderElector:
    """Lowest-ephemeral-sequential-node leader election.

    Each candidate watches only its immediate predecessor, so a dead
    leader wakes exactly one successor; the winner publishes itself
    at ``<path>/leader`` (a plain znode config fan-out can watch).
    """

    def __init__(self, session: KeeperSession, path: str, member: str):
        self.session = session
        self.path = path.rstrip("/")
        self.member = member
        self._me: str | None = None
        _ensure(session, f"{self.path}/candidates")

    @property
    def candidate_node(self) -> str | None:
        return self._me

    def volunteer(self) -> str:
        self._me = self.session.create(
            f"{self.path}/candidates/n-", data=self.member,
            ephemeral=True, sequential=True)
        return self._me

    def _standings(self) -> tuple[list[str], str]:
        assert self._me is not None, "volunteer() first"
        mine = self._me.rsplit("/", 1)[1]
        queue = list(self.session.children(f"{self.path}/candidates"))
        return queue, mine

    def is_leader(self) -> bool:
        queue, mine = self._standings()
        return bool(queue) and queue[0] == mine

    def lead(self, timeout: float = 300.0) -> None:
        """Block until this candidate is the lowest node, then
        announce at ``<path>/leader``."""
        env = self.session._service._env
        deadline = env.now + timeout
        while True:
            queue, mine = self._standings()
            if mine not in queue:
                raise NoNodeError(
                    f"candidate node {self._me} vanished (session "
                    "expired?)")
            rank = queue.index(mine)
            if rank == 0:
                self._announce()
                return
            # Watch the predecessor only: its deletion promotes us or
            # shortens the queue; either way, re-check.
            predecessor = f"{self.path}/candidates/{queue[rank - 1]}"
            if self.session.exists(predecessor, watch=True) is None:
                continue
            if env.now >= deadline:
                raise TimeoutError(f"no leadership after {timeout}s")
            self.session.next_event(timeout=_RECHECK)

    def _announce(self) -> None:
        try:
            self.session.create(f"{self.path}/leader", data=self.member)
        except NodeExistsError:
            self.session.set(f"{self.path}/leader", self.member)

    def resign(self) -> None:
        if self._me is not None:
            try:
                self.session.delete(self._me)
            except NoNodeError:
                pass
            self._me = None


class ConfigWatcher:
    """Fan-out subscriber: hold the current value of a config znode,
    re-arming the one-shot data watch on every change."""

    def __init__(self, session: KeeperSession, path: str):
        self.session = session
        self.path = path
        self.value: Any = None
        self.version: int | None = None
        self._sync()

    def _sync(self) -> None:
        try:
            self.value, self.version = self.session.get(self.path,
                                                        watch=True)
        except NoNodeError:
            self.value, self.version = None, None
            self.session.exists(self.path, watch=True)

    def await_change(self, timeout: float = 30.0) -> WatchEvent | None:
        """Block until *this* config path changes (returns the event
        and refreshes :attr:`value`), or ``None`` on timeout.  Events
        for other paths the session happens to watch are consumed and
        skipped — share a session with other recipes and those events
        belong to them, not to the config feed."""
        env = self.session._service._env
        deadline = env.now + timeout
        while True:
            remaining = deadline - env.now
            if remaining <= 0:
                return None
            event = self.session.next_event(timeout=remaining)
            if event is None:
                return None
            if event.path == self.path:
                self._sync()
                return event
