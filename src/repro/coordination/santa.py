"""The Santa Claus problem (Section 6.3.3, Fig. 7c).

Santa sleeps until either all nine reindeer return from vacation
(deliver toys — priority) or three of the ten elves need help.  The
workshop is a single monitor object written once and run three ways:

* ``local`` — plain old Java objects: the monitor lives in-process,
  entities are ordinary threads (zero-latency synchronization);
* ``dso``   — the same class, only annotated ``@Shared``: the monitor
  moves into the DSO layer, entities still run in the client;
* ``cloud`` — additionally, entities become CloudThreads.

The paper reports the DSO refinement costs ~8% and cloud threads add
only invocation overhead; the benchmark reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cloud_thread import CloudThread
from repro.core.runtime import current_environment
from repro.core.shared import shared
from repro.dso.layer import ServerObject
from repro.simulation.kernel import Kernel, current_thread
from repro.simulation.primitives import Condition, Lock
from repro.simulation.thread import spawn


class SantaWorkshop(ServerObject):
    """The monitor coordinating Santa, reindeer, and elves.

    Written against the ServerObject condition interface, so the same
    code runs as a local monitor (POJO variant) or as a shared object
    (DSO variants) — the paper's "code of the objects is not changed"
    claim, made literal.
    """

    def __init__(self, n_reindeer: int = 9, elf_group: int = 3,
                 target_deliveries: int = 15):
        self.n_reindeer = n_reindeer
        self.elf_group = elf_group
        self.target = target_deliveries
        self.reindeer_waiting = 0
        self.delivered = 0
        self.elf_tickets = 0
        self.elves_released = 0
        self.helps_done = 0
        self.finished = False
        self._santa = None
        self._reindeer = None
        self._elves = None

    def _conditions(self):
        if self._santa is None:
            self._santa = self.new_condition()
            self._reindeer = self.new_condition()
            self._elves = self.new_condition()
        return self._santa, self._reindeer, self._elves

    # -- entity-facing methods ---------------------------------------------------

    def reindeer_back(self, call) -> str:
        santa, reindeer, _elves = self._conditions()
        if self.finished:
            return "stop"
        self.reindeer_waiting += 1
        if self.reindeer_waiting == self.n_reindeer:
            santa.notify_all()
        epoch = self.delivered
        while not self.finished and self.delivered == epoch:
            reindeer.wait(call)
        return "stop" if self.finished else "delivered"

    def elf_asks(self, call) -> str:
        santa, _reindeer, elves = self._conditions()
        if self.finished:
            return "stop"
        ticket = self.elf_tickets
        self.elf_tickets += 1
        if self.elf_tickets - self.elves_released >= self.elf_group:
            santa.notify_all()
        while not self.finished and ticket >= self.elves_released:
            elves.wait(call)
        return "stop" if self.finished else "helped"

    def santa_waits(self, call) -> str:
        """Block until there is work; reindeer have priority."""
        santa, reindeer, elves = self._conditions()
        while True:
            if self.delivered >= self.target:
                self.finished = True
                reindeer.notify_all()
                elves.notify_all()
                return "done"
            if self.reindeer_waiting == self.n_reindeer:
                self.reindeer_waiting = 0  # harness the sleigh
                return "deliver"
            if self.elf_tickets - self.elves_released >= self.elf_group:
                return "help"
            santa.wait(call)

    def delivery_done(self, call) -> None:
        _santa, reindeer, _elves = self._conditions()
        self.delivered += 1
        reindeer.notify_all()

    def help_done(self, call) -> None:
        _santa, _reindeer, elves = self._conditions()
        self.elves_released += self.elf_group
        self.helps_done += 1
        elves.notify_all()

    def get_stats(self, call) -> dict:
        return {"delivered": self.delivered, "helps": self.helps_done}


# ---------------------------------------------------------------------------
# Hosting adapters: one interface, three deployments
# ---------------------------------------------------------------------------


class _LocalCondition:
    """Adapter exposing the ServerCondition interface over a local
    monitor lock (the POJO variant's wait/notify)."""

    def __init__(self, host: "LocalMonitorHost"):
        self._condition = Condition(host.kernel, lock=host.lock)

    def wait(self, call) -> None:
        self._condition.wait()

    def notify_all(self) -> None:
        self._condition.notify_all()


class LocalMonitorHost:
    """Runs a ServerObject-style class as an in-process monitor."""

    def __init__(self, kernel: Kernel, cls: type, *args):
        self.kernel = kernel
        self.lock = Lock(kernel)
        self.instance = cls(*args)
        self.instance.attach(self)

    def condition(self) -> _LocalCondition:
        return _LocalCondition(self)

    def invoke(self, method: str, *args):
        with self.lock:
            return getattr(self.instance, method)(None, *args)


class DsoMonitorHandle:
    """Uniform ``invoke`` over a shared-object proxy (picklable)."""

    def __init__(self, key: str, n_reindeer: int, elf_group: int,
                 target: int):
        self.proxy = shared(SantaWorkshop, key, n_reindeer, elf_group,
                            target)

    def invoke(self, method: str, *args):
        return getattr(self.proxy, method)(*args)


# ---------------------------------------------------------------------------
# Entities
# ---------------------------------------------------------------------------


def _reindeer_loop(handle, seed: int, vacation_mean: float) -> int:
    rng = np.random.Generator(np.random.PCG64(
        np.random.SeedSequence([seed, 0xDEE2])))
    trips = 0
    while True:
        current_thread().sleep(float(rng.exponential(vacation_mean)))
        outcome = handle.invoke("reindeer_back")
        if outcome == "stop":
            return trips
        trips += 1


def _elf_loop(handle, seed: int, work_mean: float) -> int:
    rng = np.random.Generator(np.random.PCG64(
        np.random.SeedSequence([seed, 0xE1F])))
    helped = 0
    while True:
        current_thread().sleep(float(rng.exponential(work_mean)))
        outcome = handle.invoke("elf_asks")
        if outcome == "stop":
            return helped
        helped += 1


def _santa_loop(handle, delivery_time: float, help_time: float) -> int:
    actions = 0
    while True:
        action = handle.invoke("santa_waits")
        if action == "done":
            return actions
        current_thread().sleep(
            delivery_time if action == "deliver" else help_time)
        handle.invoke(
            "delivery_done" if action == "deliver" else "help_done")
        actions += 1


class _EntityRunnable:
    """Wraps an entity loop so it can run as a CloudThread."""

    def __init__(self, role: str, handle, seed: int, params: dict):
        self.role = role
        self.handle = handle
        self.seed = seed
        self.params = params

    def run(self):
        if self.role == "reindeer":
            return _reindeer_loop(self.handle, self.seed,
                                  self.params["vacation_mean"])
        if self.role == "elf":
            return _elf_loop(self.handle, self.seed,
                             self.params["work_mean"])
        return _santa_loop(self.handle, self.params["delivery_time"],
                           self.params["help_time"])


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


VARIANTS = ("local", "dso", "cloud")


@dataclass
class SantaResult:
    variant: str
    elapsed: float
    deliveries: int
    helps: int


class SantaClausProblem:
    """10 elves, 9 reindeer, Santa; 15 toy deliveries (Section 6.3.3)."""

    def __init__(self, elves: int = 10, reindeer: int = 9,
                 deliveries: int = 15, seed: int = 2019,
                 vacation_mean: float = 0.010, work_mean: float = 0.006,
                 delivery_time: float = 0.004, help_time: float = 0.003):
        self.elves = elves
        self.reindeer = reindeer
        self.deliveries = deliveries
        self.seed = seed
        self.params = {
            "vacation_mean": vacation_mean,
            "work_mean": work_mean,
            "delivery_time": delivery_time,
            "help_time": help_time,
        }

    def run(self, variant: str, run_id: str | None = None) -> SantaResult:
        """Solve the problem once; call inside ``env.run(...)``."""
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}")
        env = current_environment()
        run_id = run_id or f"santa-{variant}"
        if variant == "local":
            handle = LocalMonitorHost(env.kernel, SantaWorkshop,
                                      self.reindeer, 3, self.deliveries)
        else:
            handle = DsoMonitorHandle(f"{run_id}/workshop", self.reindeer,
                                      3, self.deliveries)
        start = env.now
        if variant == "cloud":
            runnables = (
                [_EntityRunnable("santa", handle, self.seed, self.params)]
                + [_EntityRunnable("reindeer", handle, self.seed + 1 + i,
                                   self.params)
                   for i in range(self.reindeer)]
                + [_EntityRunnable("elf", handle, self.seed + 100 + i,
                                   self.params)
                   for i in range(self.elves)])
            env.pre_warm(len(runnables))
            start = env.now  # exclude provisioning, as the paper does
            threads = [CloudThread(r) for r in runnables]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            threads = (
                [spawn(_santa_loop, handle, self.params["delivery_time"],
                       self.params["help_time"], name="santa")]
                + [spawn(_reindeer_loop, handle, self.seed + 1 + i,
                         self.params["vacation_mean"],
                         name=f"reindeer-{i}")
                   for i in range(self.reindeer)]
                + [spawn(_elf_loop, handle, self.seed + 100 + i,
                         self.params["work_mean"], name=f"elf-{i}")
                   for i in range(self.elves)])
            for thread in threads:
                thread.join()
        stats = handle.invoke("get_stats")
        return SantaResult(variant=variant, elapsed=env.now - start,
                           deliveries=stats["delivered"],
                           helps=stats["helps"])
