"""Fine-grained coordination workloads (Section 6.3) and the
ZooKeeper-like coordination service (ROADMAP item 3)."""

from repro.coordination.mapsync import MapSyncExperiment, STRATEGIES
from repro.coordination.santa import SantaClausProblem
from repro.coordination.keeper import (
    KeeperService,
    KeeperSession,
    WatchEvent,
)
from repro.coordination.recipes import (
    ConfigWatcher,
    KeeperBarrier,
    KeeperSemaphore,
    LeaderElector,
)

__all__ = [
    "MapSyncExperiment",
    "STRATEGIES",
    "SantaClausProblem",
    "KeeperService",
    "KeeperSession",
    "WatchEvent",
    "KeeperBarrier",
    "KeeperSemaphore",
    "LeaderElector",
    "ConfigWatcher",
]
