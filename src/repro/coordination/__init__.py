"""Fine-grained coordination workloads (Section 6.3)."""

from repro.coordination.mapsync import MapSyncExperiment, STRATEGIES
from repro.coordination.santa import SantaClausProblem

__all__ = ["MapSyncExperiment", "STRATEGIES", "SantaClausProblem"]
