"""A ZooKeeper-like coordination service on DSO + notifications.

FaaSKeeper showed a full ZooKeeper equivalent can run serverless; this
module rebuilds that shape on the repo's own substrate (ROADMAP item
3).  One replicated :class:`_KeeperTree` DSO object holds the whole
hierarchical znode tree — per-node data versions, sequential znodes,
sessions with lease expiries, ephemeral ownership — and every
mutation is a deterministic method shipped through the exactly-once
DSO layer, so rf≥2 SMR replication and crash failover come for free.

**Watches.**  ZooKeeper's hardest guarantee is that a client observes
all its watch events *in the global order of the writes that fired
them*.  The tree assigns each fired event a per-session delivery
sequence number under the object lock (so sequence order == zxid
order by construction) and parks the event in an in-state outbox —
deterministic at every replica.  A client-side pump drains the outbox
and fans events out through the SQS model's ``deliver`` path, whose
heavy-tailed delivery lag happily reorders messages; the session's
*watch fence* re-orders arrivals by sequence number before the
application sees them.  ``REPRO_TEST_NO_WATCH_FENCE=1`` disables the
fence at delivery — the planted mutation the exploration hunter in
``tests/explore/test_keeper_hunter.py`` must catch.

**Sessions.**  A session is a server-side lease: a client-side
:class:`~repro.dso.liveness.HeartbeatPump` renews it at a third of
the TTL, and a sweeper thread periodically invokes
``expire_sessions(now)`` with the clock sampled *caller-side* (the
method stays deterministic for SMR).  Expiry deletes the session's
ephemeral znodes and fires their watches — exactly once, because the
deletions are ordinary tree mutations riding the same zxid log.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.proxy import GenericProxy
from repro.core.runtime import CrucialEnvironment, current_environment, \
    current_location
from repro.dso.liveness import HeartbeatPump, lease_beat_period
from repro.errors import (
    BadVersionError,
    CloudError,
    KeeperError,
    NoNodeError,
    NodeExistsError,
    NoSuchKeyError,
    NotEmptyError,
    SessionExpiredError,
)
from repro.linearizability.znode import SEQUENTIAL_WIDTH
from repro.simulation.thread import sleep, spawn

if TYPE_CHECKING:
    from repro.linearizability.history import HistoryRecorder

#: Outbox messages drained per pump invocation.
_PUMP_BATCH = 64


def _watch_fence_disabled() -> bool:
    """Planted mutation hook: deliver watch events in *arrival* order
    (skipping the sequence-number fence) so the SQS delivery lag's
    reordering becomes client-visible.  The exploration hunter must
    catch this; never set outside tests."""
    return os.environ.get("REPRO_TEST_NO_WATCH_FENCE", "") == "1"


@dataclass(frozen=True)
class WatchEvent:
    """One fired watch, as delivered to the watching session.

    ``seq`` is the per-session delivery sequence number the tree
    assigned under its object lock — consecutive from 1, in zxid
    order.  The watch fence releases events to the application
    strictly in ``seq`` order.
    """

    kind: str   # "created" | "changed" | "deleted" | "children"
    path: str
    #: zxid of the write that fired this watch.
    zxid: int
    #: Per-session delivery sequence number (1-based, dense).
    seq: int


# ---------------------------------------------------------------------------
# Server side: the replicated znode tree
# ---------------------------------------------------------------------------

#: Error classes an op may return over the recorded-history channel.
_ERRORS: dict[str, type[KeeperError]] = {
    cls.__name__: cls for cls in (
        KeeperError, NoNodeError, NodeExistsError, BadVersionError,
        NotEmptyError, SessionExpiredError)
}


class _Znode:
    """One node of the tree (plain attributes: picklable, SMR-able)."""

    __slots__ = ("data", "version", "czxid", "mzxid", "owner",
                 "children", "cseq")

    def __init__(self, data: Any, czxid: int, owner: str | None):
        self.data = data
        self.version = 0
        self.czxid = czxid
        self.mzxid = czxid
        #: Owning session id for ephemerals, else None.
        self.owner = owner
        #: Child *names* (dict for deterministic order + O(1) ops).
        self.children: dict[str, None] = {}
        #: Next sequential-child counter: dense, bumped only on a
        #: successful sequential create under this node.
        self.cseq = 0

    def __getstate__(self):
        return (self.data, self.version, self.czxid, self.mzxid,
                self.owner, self.children, self.cseq)

    def __setstate__(self, state):
        (self.data, self.version, self.czxid, self.mzxid,
         self.owner, self.children, self.cseq) = state


class _Session:
    """Server-side session record: a lease plus its ephemerals."""

    __slots__ = ("ttl", "expires_at", "ephemerals", "seq")

    def __init__(self, ttl: float, expires_at: float):
        self.ttl = ttl
        self.expires_at = expires_at
        #: Paths of ephemerals owned by this session (ordered dict-set).
        self.ephemerals: dict[str, None] = {}
        #: Watch-event delivery sequence already assigned (dense, 1-based).
        self.seq = 0

    def __getstate__(self):
        return (self.ttl, self.expires_at, self.ephemerals, self.seq)

    def __setstate__(self, state):
        self.ttl, self.expires_at, self.ephemerals, self.seq = state


def _split(path: str) -> tuple[str, str]:
    parent, _, name = path.rpartition("/")
    return parent or "/", name


class _KeeperTree:
    """The whole znode tree as one deterministic shared object.

    Deliberately *not* a :class:`~repro.dso.server.ServerObject`: no
    server-side conditions, no blocking — every method runs to
    completion under the object lock, so the tree replicates with
    rf≥2 SMR and survives primary crashes with its zxid log intact.
    All blocking (watch waits, session polls) happens client-side.

    Methods validate **before** mutating: a raising call leaves no
    state change, so failed ops are safely not replicated.
    """

    def __init__(self):
        self.nodes: dict[str, _Znode] = {"/": _Znode(None, 0, None)}
        #: Global write counter; every successful mutation gets one.
        self.zxid = 0
        self.sessions: dict[str, _Session] = {}
        #: One-shot watch registrations: path -> ordered set of sids.
        self.data_watches: dict[str, dict[str, None]] = {}
        self.child_watches: dict[str, dict[str, None]] = {}
        #: Fired events awaiting the delivery pump: (sid, event).
        self.outbox: list[tuple[str, WatchEvent]] = []
        #: Append-only audit log of applied writes: (zxid, op, path).
        self.applied: list[tuple[int, str, str]] = []
        #: Total events ever assigned per session (survives expiry).
        self.assigned: dict[str, int] = {}

    # -- internals ---------------------------------------------------------------

    def _live(self, sid: str | None) -> _Session | None:
        if sid is None:
            return None
        session = self.sessions.get(sid)
        if session is None:
            raise SessionExpiredError(f"session {sid!r} is gone")
        return session

    def _node(self, path: str) -> _Znode:
        node = self.nodes.get(path)
        if node is None:
            raise NoNodeError(f"no znode at {path!r}")
        return node

    def _fire(self, registry: dict[str, dict[str, None]], path: str,
              kind: str, zxid: int) -> None:
        watchers = registry.pop(path, None)
        if not watchers:
            return
        for sid in watchers:
            session = self.sessions.get(sid)
            if session is None:
                continue  # watcher's session died first: drop
            session.seq += 1
            self.assigned[sid] = session.seq
            self.outbox.append(
                (sid, WatchEvent(kind=kind, path=path, zxid=zxid,
                                 seq=session.seq)))

    def _register(self, registry: dict[str, dict[str, None]], path: str,
                  sid: str | None) -> None:
        if sid is not None:
            registry.setdefault(path, {})[sid] = None

    # -- znode operations ----------------------------------------------------------

    def create(self, path: str, data: Any = None, sid: str | None = None,
               ephemeral: bool = False,
               sequential: bool = False) -> tuple[str, int]:
        """Create a znode; returns ``(actual_path, zxid)``.

        Sequential creates append a dense zero-padded counter scoped
        to the parent; ephemeral creates require a live session and
        die with it.
        """
        session = self._live(sid)
        if ephemeral and session is None:
            raise KeeperError("ephemeral znodes require a session")
        parent_path, name = _split(path)
        if not name:
            raise KeeperError(f"invalid znode path {path!r}")
        parent = self._node(parent_path)
        if parent.owner is not None:
            raise KeeperError(
                f"ephemeral znode {parent_path!r} cannot have children")
        if sequential:
            name = f"{name}{parent.cseq:0{SEQUENTIAL_WIDTH}d}"
            path = (parent_path.rstrip("/") + "/" + name)
        if path in self.nodes:
            raise NodeExistsError(f"znode {path!r} already exists")
        self.zxid += 1
        zxid = self.zxid
        if sequential:
            parent.cseq += 1
        self.nodes[path] = _Znode(data, zxid, sid if ephemeral else None)
        parent.children[name] = None
        if ephemeral:
            session.ephemerals[path] = None
        self.applied.append((zxid, "create", path))
        self._fire(self.data_watches, path, "created", zxid)
        self._fire(self.child_watches, parent_path, "children", zxid)
        return path, zxid

    def get(self, path: str, sid: str | None = None,
            watch: bool = False) -> tuple[Any, int]:
        """Read ``(data, version)``; optionally leave a data watch."""
        self._live(sid)
        node = self._node(path)
        if watch:
            self._register(self.data_watches, path, sid)
        return node.data, node.version

    def set(self, path: str, data: Any, version: int = -1,
            sid: str | None = None) -> tuple[int, int]:
        """Write data; returns ``(new_version, zxid)``.

        ``version >= 0`` is a compare-and-set guard against the
        node's current data version.
        """
        self._live(sid)
        node = self._node(path)
        if version >= 0 and version != node.version:
            raise BadVersionError(
                f"{path!r}: expected version {version}, "
                f"have {node.version}")
        self.zxid += 1
        node.data = data
        node.version += 1
        node.mzxid = self.zxid
        self.applied.append((self.zxid, "set", path))
        self._fire(self.data_watches, path, "changed", self.zxid)
        return node.version, self.zxid

    def delete(self, path: str, version: int = -1,
               sid: str | None = None) -> int:
        """Delete a childless znode; returns the zxid."""
        self._live(sid)
        node = self._node(path)
        if node.children:
            raise NotEmptyError(f"{path!r} still has children")
        if version >= 0 and version != node.version:
            raise BadVersionError(
                f"{path!r}: expected version {version}, "
                f"have {node.version}")
        return self._delete_now(path, node)

    def _delete_now(self, path: str, node: _Znode) -> int:
        parent_path, name = _split(path)
        self.zxid += 1
        zxid = self.zxid
        del self.nodes[path]
        self.nodes[parent_path].children.pop(name, None)
        if node.owner is not None:
            owner = self.sessions.get(node.owner)
            if owner is not None:
                owner.ephemerals.pop(path, None)
        self.applied.append((zxid, "delete", path))
        self._fire(self.data_watches, path, "deleted", zxid)
        # ZooKeeper also tells the deleted node's children-watchers...
        self._fire(self.child_watches, path, "deleted", zxid)
        # ...and the parent's, whose child list just shrank.
        self._fire(self.child_watches, parent_path, "children", zxid)
        return zxid

    def exists(self, path: str, sid: str | None = None,
               watch: bool = False) -> int | None:
        """Data version if the znode exists, else ``None``.

        A watch set on an absent path fires on its creation.
        """
        self._live(sid)
        if watch:
            self._register(self.data_watches, path, sid)
        node = self.nodes.get(path)
        return None if node is None else node.version

    def children(self, path: str, sid: str | None = None,
                 watch: bool = False) -> tuple[str, ...]:
        """Sorted child names; optionally leave a children watch."""
        self._live(sid)
        node = self._node(path)
        if watch:
            self._register(self.child_watches, path, sid)
        return tuple(sorted(node.children))

    # -- sessions ----------------------------------------------------------------

    def create_session(self, sid: str, ttl: float, now: float) -> bool:
        if sid in self.sessions:
            raise KeeperError(f"session {sid!r} already exists")
        self.sessions[sid] = _Session(ttl, now + ttl)
        return True

    def touch(self, sid: str, now: float) -> float:
        """Renew the lease; returns the new expiry instant."""
        session = self._live(sid)
        session.expires_at = now + session.ttl
        return session.expires_at

    def close_session(self, sid: str) -> tuple[tuple[str, int], ...]:
        """Graceful goodbye: drop the session and its ephemerals.

        Idempotent — closing an already-expired session is a no-op
        (its ephemerals are long gone)."""
        if sid not in self.sessions:
            return ()
        return self._end_session(sid)

    def expire_sessions(self, now: float) \
            -> tuple[tuple[str, tuple[tuple[str, int], ...]], ...]:
        """Expire every session whose lease lapsed before ``now``.

        ``now`` is an *argument* — the sweeper samples the clock
        caller-side — so the method replays identically at every SMR
        backup.  Returns ``((sid, ((path, zxid), ...)), ...)``.
        """
        lapsed = sorted(sid for sid, session in self.sessions.items()
                        if session.expires_at <= now)
        return tuple((sid, self._end_session(sid)) for sid in lapsed)

    def _end_session(self, sid: str) -> tuple[tuple[str, int], ...]:
        session = self.sessions.pop(sid)
        deleted = tuple(
            (path, self._delete_now(path, self.nodes[path]))
            for path in sorted(session.ephemerals)
            if path in self.nodes)
        # Drop the dead session's watch registrations.
        for registry in (self.data_watches, self.child_watches):
            for watchers in registry.values():
                watchers.pop(sid, None)
        return deleted

    # -- delivery + audit ---------------------------------------------------------

    def drain_outbox(self, limit: int = _PUMP_BATCH) \
            -> tuple[tuple[str, WatchEvent], ...]:
        """Remove and return up to ``limit`` pending (sid, event)
        pairs.  A mutation: exactly-once under session dedup, so a
        pump retry across a failover never re-delivers a batch."""
        batch = tuple(self.outbox[:limit])
        del self.outbox[:limit]
        return batch

    def outbox_depth(self) -> int:
        return len(self.outbox)

    def latest_zxid(self) -> int:
        return self.zxid

    def zxid_log(self) -> tuple[tuple[int, str, str], ...]:
        """The applied-write audit log: ``(zxid, op, path)``."""
        return tuple(self.applied)

    def assigned_counts(self) -> dict[str, int]:
        """Watch events ever assigned, per session (incl. expired)."""
        return dict(self.assigned)

    def dump(self) -> dict[str, tuple[Any, int, str | None]]:
        """Quiescent snapshot for audits: path -> (data, version,
        ephemeral owner)."""
        return {path: (node.data, node.version, node.owner)
                for path, node in sorted(self.nodes.items())}


# ---------------------------------------------------------------------------
# Client side: service + sessions
# ---------------------------------------------------------------------------


class KeeperService:
    """Client-side handle on one replicated keeper tree.

    Owns the two service threads every ZooKeeper ensemble hides
    inside the server — here they are explicit clients of the
    replicated tree:

    * the **delivery pump**, draining the tree's watch outbox into
      one SQS queue per session (the notification fan-out path), and
    * the **session sweeper**, invoking ``expire_sessions(now)`` so
      lapsed leases lose their ephemerals within a bounded delay
      (``sweep_period`` defaults to a third of the session TTL, so
      detection lands well inside 2× TTL).

    Construct inside ``env.run(main)``; sessions opened from FaaS
    containers are tied to container liveness via the platform's
    reclaim hook (a reclaimed container's sessions stop heartbeating
    and expire, FaaSKeeper-style).
    """

    def __init__(self, name: str = "keeper", *, rf: int = 2,
                 session_ttl: float = 3.0, pump_period: float = 0.1,
                 sweep_period: float | None = None,
                 recorder: HistoryRecorder | None = None,
                 history_key: str | None = None,
                 env: CrucialEnvironment | None = None):
        self._env = env if env is not None else current_environment()
        self.name = name
        self.session_ttl = session_ttl
        self.pump_period = pump_period
        self.sweep_period = (sweep_period if sweep_period is not None
                             else session_ttl / 3.0)
        self._recorder = recorder
        self._history_key = history_key or f"keeper:{name}"
        # rf>=2 keeper trees are persistent DSO objects: SMR-replicated,
        # so the zxid log and every ephemeral/watch survives a primary
        # crash.  rf=1 is for cheap single-node test setups.
        self._proxy = GenericProxy(_KeeperTree, name,
                                   persistent=rf >= 2, rf=rf)
        self._proxy._ensure()
        self._sessions: dict[str, KeeperSession] = {}
        self._sids = itertools.count(1)
        self._stopped = False
        #: Pump/sweeper invocations that failed after DSO retries
        #: (e.g. a failover outlasting the retry deadline).
        self.service_errors = 0
        self._pump = spawn(self._pump_loop, name=f"{name}-pump",
                           daemon=True)
        self._sweeper = spawn(self._sweep_loop, name=f"{name}-sweeper",
                              daemon=True)
        self._env.platform.on_container_reclaim(self._container_reclaimed)

    # -- invocation (with optional history recording) -------------------------------

    def _call(self, method: str, *args: Any) -> Any:
        # Proxy._invoke, not getattr: tree method names like "delete"
        # and "get" would otherwise shadow DsoProxy's own attributes.
        if self._recorder is None:
            return self._proxy._invoke(method, *args)

        def attempt() -> Any:
            try:
                return self._proxy._invoke(method, *args)
            except KeeperError as exc:
                # Errors are *results* to the sequential spec: the
                # model returns the same sentinel instead of raising
                # (class name only, so messages never skew replay).
                return ("err", type(exc).__name__)

        outcome = self._recorder.record(current_location(), method, args,
                                        attempt, key=self._history_key)
        if isinstance(outcome, tuple) and len(outcome) == 2 \
                and outcome[0] == "err" and outcome[1] in _ERRORS:
            raise _ERRORS[outcome[1]](f"{method} {args[:1]}: {outcome[1]}")
        return outcome

    # -- sessions ----------------------------------------------------------------

    def _queue_name(self, sid: str) -> str:
        return f"{self.name}-events-{sid}"

    def session(self, ttl: float | None = None, *,
                name: str | None = None,
                home: str | None = None) -> "KeeperSession":
        """Open a session: a lease on the tree, a watch-event queue,
        and a heartbeat pump renewing at a third of the TTL.

        ``home`` ties the session to an endpoint's liveness (default:
        wherever the call runs).  A function handler passes its
        ``ctx.endpoint`` so the session dies with the container.
        """
        ttl = ttl if ttl is not None else self.session_ttl
        sid = name or f"{self.name}-s{next(self._sids)}"
        self._env.queue_service.create_queue(self._queue_name(sid))
        self._call("create_session", sid, ttl, self._env.now)
        session = KeeperSession(self, sid, ttl,
                                home=home or current_location())
        self._sessions[sid] = session
        return session

    def _container_reclaimed(self, endpoint: str) -> None:
        # FaaSKeeper's liveness rule: a session opened from a function
        # container dies with the container.  No goodbye — the
        # heartbeat just stops and the lease runs out.
        for session in list(self._sessions.values()):
            if session.home == endpoint and session.state == "open":
                session.abandon()

    # -- service threads ------------------------------------------------------------

    def _pump_loop(self) -> None:
        queues = self._env.queue_service
        while not self._stopped:
            try:
                batch = self._proxy._invoke("drain_outbox", _PUMP_BATCH)
            except CloudError:
                self.service_errors += 1
                batch = ()
            for sid, event in batch:
                try:
                    queues.deliver(self._queue_name(sid), event)
                except NoSuchKeyError:
                    pass  # a session some other client owns
            if len(batch) < _PUMP_BATCH:
                sleep(self.pump_period)

    def _sweep_loop(self) -> None:
        while not self._stopped:
            sleep(self.sweep_period)
            if self._stopped:
                return
            now = self._env.now
            invoked = self._env.now
            try:
                expired = self._proxy._invoke("expire_sessions", now)
            except CloudError:
                self.service_errors += 1
                continue
            if expired and self._recorder is not None:
                self._recorder.add(current_location(), "expire_sessions",
                                   (now,), expired, invoked,
                                   self._env.now, key=self._history_key)
            for sid, _deleted in expired:
                local = self._sessions.pop(sid, None)
                if local is not None:
                    local._mark_expired()

    def stop(self) -> None:
        """Stop the pump and sweeper (sessions keep their state)."""
        self._stopped = True
        for session in self._sessions.values():
            session._pump.stop()

    # -- audit accessors -------------------------------------------------------------

    def zxid_log(self) -> tuple[tuple[int, str, str], ...]:
        return self._proxy._invoke("zxid_log")

    def assigned_counts(self) -> dict[str, int]:
        return self._proxy._invoke("assigned_counts")

    def dump(self) -> dict[str, tuple[Any, int, str | None]]:
        return self._proxy._invoke("dump")

    def latest_zxid(self) -> int:
        return self._proxy._invoke("latest_zxid")

    def outbox_depth(self) -> int:
        return self._proxy._invoke("outbox_depth")


class KeeperSession:
    """One client's lease-backed view of the tree.

    All znode methods ship through the service's proxy with this
    session's id attached; watch events arrive on the session's own
    SQS queue and are released by :meth:`next_event` strictly in the
    tree-assigned sequence order (the watch fence) — unless the
    ``REPRO_TEST_NO_WATCH_FENCE`` mutation is planted.
    """

    def __init__(self, service: KeeperService, sid: str, ttl: float,
                 home: str):
        self._service = service
        self.sid = sid
        self.ttl = ttl
        #: Endpoint the session was opened from ("client" or a
        #: container name); container sessions die with the container.
        self.home = home
        self.state = "open"  # open | closed | killed | expired
        #: Events released to the application, in release order.
        self.delivered: list[WatchEvent] = []
        #: Acknowledged writes: (op, path, zxid).
        self.acked: list[tuple[str, str, int]] = []
        self._buffer: dict[int, WatchEvent] = {}
        self._arrivals: list[WatchEvent] = []
        self._next_seq = 1
        self._queue = service._queue_name(sid)
        self._pump = HeartbeatPump(lease_beat_period(ttl), self._beat,
                                   name=f"{sid}-heartbeat")

    # -- liveness ----------------------------------------------------------------

    def _beat(self) -> None:
        self._service._call("touch", self.sid, self._service._env.now)

    def close(self) -> None:
        """Graceful goodbye: ephemerals are deleted immediately."""
        if self.state != "open":
            return
        self.state = "closed"
        self._pump.stop()
        self._service._call("close_session", self.sid)
        self._service._sessions.pop(self.sid, None)

    def kill(self) -> None:
        """Chaos: the holder fail-stops mid-heartbeat.  No goodbye —
        the lease lapses and the sweeper reaps the ephemerals."""
        if self.state == "open":
            self.state = "killed"
        self._pump.kill()

    #: A reclaimed container's sessions are abandoned the same way.
    abandon = kill

    def _mark_expired(self) -> None:
        if self.state in ("open", "killed"):
            self.state = "expired"
        self._pump.stop()

    @property
    def expired(self) -> bool:
        return self.state == "expired"

    def __enter__(self) -> "KeeperSession":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- znode operations ----------------------------------------------------------

    def _check_open(self) -> None:
        if self.state not in ("open", "killed"):
            # A killed session is a zombie: it may still issue ops
            # until the server expires it — exactly the race the
            # server-side liveness check exists for.
            raise SessionExpiredError(f"session {self.sid} is {self.state}")

    def create(self, path: str, data: Any = None, *,
               ephemeral: bool = False, sequential: bool = False) -> str:
        self._check_open()
        actual, zxid = self._service._call(
            "create", path, data, self.sid, ephemeral, sequential)
        self.acked.append(("create", actual, zxid))
        return actual

    def get(self, path: str, *, watch: bool = False) -> tuple[Any, int]:
        self._check_open()
        return self._service._call("get", path, self.sid, watch)

    def set(self, path: str, data: Any, *, version: int = -1) -> int:
        self._check_open()
        new_version, zxid = self._service._call(
            "set", path, data, version, self.sid)
        self.acked.append(("set", path, zxid))
        return new_version

    def delete(self, path: str, *, version: int = -1) -> None:
        self._check_open()
        zxid = self._service._call("delete", path, version, self.sid)
        self.acked.append(("delete", path, zxid))

    def exists(self, path: str, *, watch: bool = False) -> int | None:
        self._check_open()
        return self._service._call("exists", path, self.sid, watch)

    def children(self, path: str, *,
                 watch: bool = False) -> tuple[str, ...]:
        self._check_open()
        return self._service._call("children", path, self.sid, watch)

    # -- watch delivery (the fence) --------------------------------------------------

    def _admit(self, event: WatchEvent) -> None:
        if _watch_fence_disabled():
            self._arrivals.append(event)
        elif event.seq >= self._next_seq and event.seq not in self._buffer:
            self._buffer[event.seq] = event

    def _pop_ready(self) -> WatchEvent | None:
        if _watch_fence_disabled():
            if self._arrivals:
                return self._arrivals.pop(0)
            if self._buffer:  # anything fenced before the mutation landed
                return self._buffer.pop(min(self._buffer))
            return None
        event = self._buffer.pop(self._next_seq, None)
        if event is not None:
            self._next_seq += 1
        return event

    def next_event(self, timeout: float = 5.0) -> WatchEvent | None:
        """The next watch event in global write order, or ``None``
        after ``timeout`` virtual seconds.

        The fence: an event is released only once every
        lower-sequence event of this session has been released, so
        the application's view follows zxid order no matter how the
        queue's delivery lag shuffled arrivals.
        """
        env = self._service._env
        queues = env.queue_service
        deadline = env.now + timeout
        while True:
            event = self._pop_ready()
            if event is not None:
                self.delivered.append(event)
                return event
            remaining = deadline - env.now
            if remaining <= 0:
                return None
            batch = queues.receive(self._queue, max_messages=10,
                                   wait=min(remaining, 2.0))
            if batch:
                queues.delete_batch(self._queue,
                                    [m.receipt for m in batch])
                for message in batch:
                    self._admit(message.body)

    def events(self, count: int, timeout: float = 30.0) \
            -> Iterator[WatchEvent]:
        """Yield up to ``count`` events within an overall timeout."""
        deadline = self._service._env.now + timeout
        for _ in range(count):
            event = self.next_event(
                timeout=deadline - self._service._env.now)
            if event is None:
                return
            yield event
