"""Synchronizing a map phase (Section 6.3.1, Fig. 6).

Five techniques to detect that all mappers finished and aggregate
their outputs, benchmarked on a back-to-back Monte-Carlo map phase:

* ``s3-polling``   — the original PyWren scheme: mappers PUT results
  to the object store; the reducer polls listings (slow, high
  variance: latency + eventual consistency + polling);
* ``grid-polling`` — same scheme over the in-memory KV grid
  (Infinispan): faster, but still polling;
* ``sqs``          — mappers send results through the queue service;
  the reducer drains it (the slowest: queue latencies dominate);
* ``future``       — one Crucial Future per mapper; the reducer's
  ``get`` returns the moment the result is set, then reduces locally;
* ``auto-reduce``  — mappers aggregate directly into one shared object
  and trip a latch; the reduce phase disappears entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.cloud_thread import CloudThread
from repro.core.objects import AtomicLong
from repro.core.runtime import compute, current_environment
from repro.core.sync import CountDownLatch, Future
from repro.ml.costmodel import montecarlo_cost


# ---------------------------------------------------------------------------
# Publication strategies (picklable; resolve services at call time)
# ---------------------------------------------------------------------------


class S3Publish:
    name = "s3-polling"

    def __init__(self, run_id: str, parties: int):
        self.run_id = run_id
        self.parties = parties

    def publish(self, worker_id: int, value: int) -> None:
        store = current_environment().object_store
        store.put(f"{self.run_id}/out/{worker_id:04d}", value)

    def collect(self) -> int:
        """PyWren-style: poll the listing, then fetch all outputs."""
        from repro.simulation.thread import sleep

        store = current_environment().object_store
        prefix = f"{self.run_id}/out/"
        while True:
            keys = store.list_prefix(prefix)
            if len(keys) >= self.parties:
                break
            sleep(1.0)  # PyWren's poll interval
        return sum(store.get(key) for key in keys)


class GridPublish:
    name = "grid-polling"

    def __init__(self, run_id: str, parties: int):
        self.run_id = run_id
        self.parties = parties

    def publish(self, worker_id: int, value: int) -> None:
        from repro.core.runtime import current_location

        grid = current_environment().data_grid()
        grid.put(current_location(), f"{self.run_id}/{worker_id}", value)

    def collect(self) -> int:
        from repro.core.runtime import current_location
        from repro.simulation.thread import sleep

        grid = current_environment().data_grid()
        client = current_location()
        pending = set(range(self.parties))
        values: dict[int, int] = {}
        while pending:
            for worker_id in sorted(pending):
                if grid.contains(client, f"{self.run_id}/{worker_id}"):
                    values[worker_id] = grid.get(
                        client, f"{self.run_id}/{worker_id}")
                    pending.discard(worker_id)
            if pending:
                sleep(0.100)  # poll interval
        return sum(values.values())


class SqsPublish:
    name = "sqs"

    def __init__(self, run_id: str, parties: int):
        self.run_id = run_id
        self.parties = parties

    @property
    def queue_name(self) -> str:
        return f"{self.run_id}-results"

    def setup(self) -> None:
        current_environment().queue_service.create_queue(self.queue_name)

    def publish(self, worker_id: int, value: int) -> None:
        current_environment().queue_service.send(self.queue_name, value)

    def collect(self) -> int:
        """The naive consumer loop of 2019-era serverless frameworks:
        one message per receive, one delete per message."""
        sqs = current_environment().queue_service
        total = 0
        received = 0
        while received < self.parties:
            batch = sqs.receive(self.queue_name, max_messages=1, wait=5.0)
            for message in batch:
                total += message.body
                received += 1
                sqs.delete(self.queue_name, message.receipt)
        return total


class FuturePublish:
    name = "future"

    def __init__(self, run_id: str, parties: int):
        self.run_id = run_id
        self.parties = parties

    def publish(self, worker_id: int, value: int) -> None:
        Future(f"{self.run_id}/future-{worker_id}").set(value)

    def collect(self) -> int:
        """Blocking get per mapper: responds the moment results land,
        then a client-side reduce."""
        return sum(Future(f"{self.run_id}/future-{i}").get()
                   for i in range(self.parties))


class AutoReducePublish:
    name = "auto-reduce"

    def __init__(self, run_id: str, parties: int):
        self.run_id = run_id
        self.parties = parties

    def publish(self, worker_id: int, value: int) -> None:
        AtomicLong(f"{self.run_id}/total").add_and_get(value)
        CountDownLatch(f"{self.run_id}/done", self.parties).count_down()

    def collect(self) -> int:
        CountDownLatch(f"{self.run_id}/done", self.parties).wait()
        return AtomicLong(f"{self.run_id}/total").get()


STRATEGIES = {
    cls.name: cls
    for cls in (S3Publish, GridPublish, SqsPublish, FuturePublish,
                AutoReducePublish)
}


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


class MapSyncWorker:
    """One mapper: Monte-Carlo compute, then publish via the strategy."""

    def __init__(self, strategy, worker_id: int, draws: int):
        self.strategy = strategy
        self.worker_id = worker_id
        self.draws = draws

    def run(self) -> dict:
        env = current_environment()
        rng = np.random.Generator(np.random.PCG64(
            np.random.SeedSequence([self.worker_id, 77])))
        count = int(rng.binomial(self.draws, math.pi / 4.0))
        compute(montecarlo_cost(self.draws, env.config), jitter_sigma=0.02)
        compute_done = env.now
        self.strategy.publish(self.worker_id, count)
        return {"compute_done": compute_done, "publish_done": env.now}


@dataclass
class MapSyncResult:
    strategy: str
    total_time: float
    sync_time: float
    aggregate: int
    worker_reports: list[dict]


class MapSyncExperiment:
    """Runs one strategy once; call from inside ``env.run(...)``."""

    def __init__(self, strategy_name: str, n_threads: int = 100,
                 draws: int = 100_000_000, run_id: str | None = None):
        if strategy_name not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy_name!r}; "
                             f"pick one of {sorted(STRATEGIES)}")
        self.strategy_name = strategy_name
        self.n_threads = n_threads
        self.draws = draws
        self.run_id = run_id or f"mapsync-{strategy_name}"

    def execute(self, pre_warm: bool = True) -> MapSyncResult:
        env = current_environment()
        strategy = STRATEGIES[self.strategy_name](self.run_id,
                                                  self.n_threads)
        if hasattr(strategy, "setup"):
            strategy.setup()
        if pre_warm:
            env.pre_warm(self.n_threads)
        start = env.now
        threads = [
            CloudThread(MapSyncWorker(strategy, i, self.draws))
            for i in range(self.n_threads)
        ]
        for thread in threads:
            thread.start()
        aggregate = strategy.collect()
        collected = env.now
        for thread in threads:
            thread.join()
        reports = [thread.result() for thread in threads]
        mean_compute_done = sum(
            r["compute_done"] for r in reports) / len(reports)
        return MapSyncResult(
            strategy=self.strategy_name,
            total_time=env.now - start,
            sync_time=collected - mean_compute_done,
            aggregate=aggregate,
            worker_reports=reports)
