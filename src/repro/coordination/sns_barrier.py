"""A barrier built from the standard AWS toolkit: SNS + SQS.

The Fig. 7a baseline: threads announce arrival on a shared SQS queue;
a coordinator (in the client) counts arrivals and publishes a release
message to an SNS topic fanned out to one SQS queue per thread, which
each thread polls.  Every step pays queue/notification latencies, so
the barrier costs hundreds of milliseconds — one order of magnitude
slower than Crucial's DSO barrier at 320 threads.
"""

from __future__ import annotations

from repro.core.runtime import current_environment


class SnsSqsBarrier:
    """A reusable (cyclic) barrier over SNS + SQS."""

    def __init__(self, run_id: str, parties: int):
        self.run_id = run_id
        self.parties = parties

    # -- naming ------------------------------------------------------------------

    @property
    def arrival_queue(self) -> str:
        return f"{self.run_id}-arrivals"

    @property
    def topic(self) -> str:
        return f"{self.run_id}-release"

    def member_queue(self, thread_id: int) -> str:
        return f"{self.run_id}-member-{thread_id}"

    # -- setup (client side, before measurement) -----------------------------------

    def setup(self) -> None:
        env = current_environment()
        env.queue_service.create_queue(self.arrival_queue)
        env.notification.create_topic(self.topic)
        for thread_id in range(self.parties):
            env.queue_service.create_queue(self.member_queue(thread_id))
            env.notification.subscribe(self.topic,
                                       self.member_queue(thread_id))

    # -- coordinator --------------------------------------------------------------

    def coordinate(self, rounds: int) -> None:
        """Run in a client thread: release each round once all
        arrivals are in."""
        env = current_environment()
        for round_number in range(rounds):
            seen = 0
            while seen < self.parties:
                batch = env.queue_service.receive(
                    self.arrival_queue, max_messages=10, wait=30.0)
                if batch:
                    env.queue_service.delete_batch(
                        self.arrival_queue,
                        [message.receipt for message in batch])
                seen += len(batch)
            env.notification.publish(self.topic, round_number)

    # -- member side -----------------------------------------------------------------

    def wait(self, thread_id: int, round_number: int) -> None:
        """Announce arrival, then poll the member queue for release."""
        env = current_environment()
        env.queue_service.send(self.arrival_queue,
                               (thread_id, round_number))
        queue = self.member_queue(thread_id)
        while True:
            batch = env.queue_service.receive(queue, max_messages=10,
                                              wait=30.0)
            if batch:
                env.queue_service.delete_batch(
                    queue, [message.receipt for message in batch])
            if any(message.body >= round_number for message in batch):
                return
