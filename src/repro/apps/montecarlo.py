"""Monte Carlo estimation of pi (Listing 1).

The embarrassingly parallel fork/join application: each cloud thread
draws points in the unit square and adds its in-circle count to a
single shared counter with ``add_and_get``.

The simulation draws the count from the exact binomial distribution of
the loop (count ~ Binomial(n, pi/4)) instead of iterating 100 M times,
and charges the modelled CPU time of the draws — statistically
indistinguishable from running the loop, at laptop speed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cloud_thread import CloudThread
from repro.core.objects import AtomicLong
from repro.core.runtime import compute, current_environment
from repro.ml.costmodel import montecarlo_cost


class PiEstimator:
    """The Runnable of Listing 1."""

    def __init__(self, iterations: int = 100_000_000,
                 counter_key: str = "counter", seed: int = 0):
        self.iterations = iterations
        self.seed = seed
        self.counter = AtomicLong(counter_key)

    def run(self) -> int:
        env = current_environment()
        rng = np.random.Generator(np.random.PCG64(
            np.random.SeedSequence([self.seed, 0x9E3779B9])))
        count = int(rng.binomial(self.iterations, math.pi / 4.0))
        compute(montecarlo_cost(self.iterations, env.config),
                jitter_sigma=0.01)
        self.counter.add_and_get(count)
        return count


def estimate_pi(n_threads: int, iterations_per_thread: int = 100_000_000,
                counter_key: str = "counter",
                pre_warm: bool = True) -> tuple[float, float]:
    """Run Listing 1's fork/join; returns ``(pi_estimate, elapsed)``.

    Must be called from inside ``env.run(...)``.
    """
    env = current_environment()
    if pre_warm:
        env.pre_warm(n_threads)
    start = env.now
    threads = [
        CloudThread(PiEstimator(iterations_per_thread, counter_key, seed=i))
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = AtomicLong(counter_key).get()
    elapsed = env.now - start
    estimate = 4.0 * total / (n_threads * iterations_per_thread)
    return estimate, elapsed
