"""Example applications from the paper's evaluation."""

from repro.apps.montecarlo import PiEstimator, estimate_pi

__all__ = ["PiEstimator", "estimate_pi"]
