"""State machine replication over view-synchronous total order.

The full Section 4.1 protocol stack, message-driven: operations on a
replicated object are disseminated with Skeen's total-order multicast
inside a view-synchronous group; every replica applies the same
sequence to its copy, and the primary responds to the caller
(Schneider's SMR tutorial, ref. [45]).

The DSO layer's hot path uses an equivalent caller-driven form for
simulation efficiency; this package provides the faithful
message-driven construction, property-tested for replica agreement
under crashes and view changes.
"""

from repro.smr.replica import ReplicatedStateMachine

__all__ = ["ReplicatedStateMachine"]
