"""A replicated state machine over view-synchronous multicast.

Replicas hold identical copies of a deterministic object.  A client
submits an operation through any *live* member; the operation is
multicast with total-order delivery, every member applies it to its
local copy in delivery order, and a designated responder (the first
live member of the current view — "a distinct replica (primary) is in
charge of sending back the result", Section 4.1) completes the
client's future.

View changes re-home the responder role; operations stalled on a
crashed member are flushed by the view-synchrony layer.  Because every
surviving replica applied the same prefix, any acknowledged operation
survives ``n - 1`` member crashes.

Operations may carry a :class:`repro.dso.session.SessionStamp`; each
member then keeps a session table alongside its copy (included in
state transfer), so a client retransmitting an operation after a
responder crash gets the cached reply instead of applying it twice —
the same exactly-once contract the DSO layer offers.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.cluster.membership import MembershipService, View
from repro.dso.session import SessionStamp, SessionTable
from repro.errors import ServiceUnavailableError, SessionReplayError
from repro.multicast.view_synchrony import ViewSynchronousGroup
from repro.net.network import Network, ship
from repro.simulation.kernel import Kernel
from repro.simulation.primitives import Event


class ReplicatedStateMachine:
    """N replicas of one deterministic object, totally ordered."""

    def __init__(self, kernel: Kernel, network: Network,
                 membership: MembershipService,
                 factory: Callable[[], Any], name: str = "rsm"):
        self.kernel = kernel
        self.network = network
        self.membership = membership
        self.name = name
        self.factory = factory
        #: member -> local copy of the object
        self.copies: dict[str, Any] = {}
        #: member -> applied operation log (op ids, for the tests)
        self.logs: dict[str, list] = {}
        #: member -> exactly-once session table (replicated state)
        self.sessions: dict[str, SessionTable] = {}
        self._ids = itertools.count()
        #: op_id -> {"event": Event, "result": Any, "applied": set}
        self._pending: dict[int, dict] = {}
        self.group = ViewSynchronousGroup(
            kernel, network, membership, deliver=self._deliver,
            on_view=self._on_view)
        for member in membership.view.members:
            self._ensure_copy(member)

    # -- membership ---------------------------------------------------------------

    def _ensure_copy(self, member: str) -> None:
        if member not in self.copies:
            self.copies[member] = self.factory()
            self.logs[member] = []
            self.sessions[member] = SessionTable()

    def _on_view(self, view: View) -> None:
        for member in view.members:
            if member not in self.copies and self.copies:
                # State transfer: a joiner copies a survivor's state —
                # session tables included, so dedup survives the join.
                donor = next(m for m in self.copies
                             if self.network.endpoint(m).alive)
                self.copies[member] = ship(self.copies[donor])
                self.logs[member] = list(self.logs[donor])
                self.sessions[member] = ship(self.sessions[donor])
            else:
                self._ensure_copy(member)
        # Complete acks whose responder died before responding.
        for record in self._pending.values():
            if record["applied"] and not record["event"].is_set() \
                    and record["responder"] not in view.members:
                record["event"].set()

    def _responder(self) -> str:
        view = self.membership.view
        for member in view.members:
            if self.network.endpoint(member).alive:
                return member
        raise ServiceUnavailableError(f"{self.name}: no live replica")

    # -- operation path ----------------------------------------------------------------

    def _deliver(self, member: str, payload: Any) -> None:
        if len(payload) == 4:
            op_id, method, args, stamp = payload
        else:  # legacy 3-tuple payloads (no session)
            op_id, method, args = payload
            stamp = None
        copy = self.copies.get(member)
        if copy is None:
            return
        entry = None
        if stamp is not None:
            try:
                entry = self.sessions[member].lookup(stamp)
            except SessionReplayError:
                return  # applied here and since truncated
        if entry is not None:
            result = entry.reply  # duplicate: replay, don't re-apply
        else:
            result = getattr(copy, method)(*ship(args))
            self.logs[member].append(op_id)
            if stamp is not None:
                # Total-order delivery means an op recorded here is
                # recorded everywhere: committed from the start.
                self.sessions[member].record(stamp, result,
                                             committed=True)
        record = self._pending.get(op_id)
        if record is None:
            return
        record["applied"].add(member)
        if member == record["responder"]:
            record["result"] = result
            record["event"].set()

    def invoke(self, client: str, method: str, *args: Any,
               session: SessionStamp | None = None) -> Any:
        """Apply ``method`` at every replica; return the result.

        Blocks the calling simulated thread until the responder
        delivered (hence every earlier op is stable at all replicas).
        ``session`` stamps the operation for exactly-once semantics: a
        retransmission with the same stamp replays the cached reply.
        """
        responder = self._responder()
        self.network.transfer(client, responder, (method, args))
        op_id = next(self._ids)
        record = {"event": Event(self.kernel), "result": None,
                  "applied": set(), "responder": responder}
        self._pending[op_id] = record
        self.group.multicast(responder, (op_id, method, ship(args), session))
        record["event"].wait()
        if not record["applied"]:
            raise ServiceUnavailableError(
                f"{self.name}: operation lost in a view change")
        if record["responder"] not in record["applied"]:
            # Responder died mid-protocol; any survivor's result is
            # equal by determinism — re-read from one.
            survivor = next(iter(record["applied"]))
            record["result"] = None if not self.logs[survivor] else \
                record["result"]
        self.network.transfer(responder if
                              self.network.endpoint(responder).alive
                              else self._responder(), client, None)
        del self._pending[op_id]
        return record["result"]

    # -- inspection -----------------------------------------------------------------------

    def copy_of(self, member: str) -> Any:
        return self.copies[member]

    def log_of(self, member: str) -> list:
        return list(self.logs[member])
