"""Pluggable schedulers: the kernel's scheduling-point strategies.

The deterministic kernel dispatches events in ``(time, seq)`` order, so
one seed exercises exactly one interleaving.  A scheduler attached via
``Kernel(scheduler=...)`` turns every dispatch into a *scheduling
point*: all events ready at the minimum virtual time are offered to it
and it decides which runs first — and whether to preempt it with a
bounded extra delay.  Because virtual time only moves forward, every
choice a scheduler can make corresponds to a physically realisable
execution (a thread that ran a little later, a message that arrived a
little slower), so perturbed runs explore *real* interleavings, never
impossible ones.

Three strategies, in the spirit of controlled concurrency testing
(Coyote / PCT, "A Randomized Scheduler with Probabilistic Guarantees
of Finding Bugs"):

* :class:`FifoScheduler` — always picks the lowest sequence number and
  never delays: decision-for-decision identical to running without a
  scheduler.  The degenerate case, and the fallback tail during
  shrinking.
* :class:`RandomScheduler` — shuffles same-timestamp ties uniformly
  and, with probability ``preempt_prob`` (up to ``max_preemptions``
  times per run), delays the chosen event by ``preempt_delay`` virtual
  seconds, letting nearby events overtake it.
* :class:`PctScheduler` — priority-based: each task (simulated thread,
  or the timer class) gets a random priority on first sight, the
  highest-priority ready task always runs, and at ``depth - 1``
  pre-drawn change points the running task's priority is demoted below
  everything — the PCT schedule construction, which finds any bug of
  depth ``d`` with probability >= 1/(n * k^(d-1)).

Every scheduler draws all decisions from one ``numpy`` generator
seeded at construction and records them in a :class:`ScheduleTrace`,
so a schedule is a pure function of ``(scheduler kind, exploration
seed, workload)``: replaying the same seed reproduces the run event
for event, and :class:`ReplayScheduler` replays a recorded decision
prefix (FIFO after it) — the primitive behind schedule shrinking.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.simulation.kernel import Timer


@dataclass(frozen=True)
class ScheduleDecision:
    """One recorded scheduling-point outcome."""

    #: 0-based scheduling-point counter within the run.
    step: int
    #: Virtual time of the point.
    time: float
    #: Labels of the candidate events, in FIFO order.
    options: tuple[str, ...]
    #: Index (into ``options``) of the event chosen to run.
    chosen: int
    #: Extra virtual delay injected before the chosen event (0 = ran).
    delay: float


@dataclass
class ScheduleTrace:
    """The full decision record of one explored run."""

    decisions: list[ScheduleDecision] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.decisions)

    def fingerprint(self) -> str:
        """Stable digest of the decision sequence.

        Two runs interleaved identically share a fingerprint; distinct
        fingerprints prove distinct schedules.  Only *effective*
        decisions count — points with a single candidate and no delay
        cannot reorder anything and are excluded, so the FIFO schedule
        of every workload fingerprints to the same value regardless of
        how many trivial points it passed through.
        """
        effective = [d for d in self.decisions
                     if len(d.options) > 1 or d.delay > 0 or d.chosen > 0]
        payload = ";".join(
            f"{d.step}:{d.chosen}:{d.delay:.9f}" for d in effective)
        return f"{zlib.crc32(payload.encode('ascii')):08x}"

    def describe(self, limit: int = 20) -> str:
        """Human-readable dump of the first ``limit`` effective
        decisions (single-candidate no-op points are elided)."""
        lines = []
        for d in self.decisions:
            if len(d.options) <= 1 and d.delay == 0 and d.chosen == 0:
                continue
            note = f" delay={d.delay:.6f}" if d.delay > 0 else ""
            lines.append(f"step {d.step} t={d.time:.6f} "
                         f"chose {d.options[d.chosen]!r} "
                         f"of {list(d.options)}{note}")
            if len(lines) >= limit:
                lines.append("...")
                break
        return "\n".join(lines) or "(FIFO: no effective decisions)"


def _label(item) -> str:
    """Stable label of a schedulable event (for traces and PCT
    priorities): the owning thread's name, or the timer class."""
    if isinstance(item, Timer):
        return "timer"
    return item.thread.name


class Scheduler:
    """Base scheduler: FIFO choice, no delays, full decision trace.

    Subclasses override :meth:`_choose` (index into the candidate
    list) and/or :meth:`_delay` (extra virtual seconds, >= 0, bounded).
    ``decide`` itself handles recording and the step counter, so every
    strategy produces a replayable :class:`ScheduleTrace`.
    """

    kind = "fifo"

    def __init__(self) -> None:
        self.trace = ScheduleTrace()
        self.steps = 0

    def decide(self, time: float, entries: list) -> tuple[int, float]:
        """One scheduling point (called by ``Kernel._next_event``).

        ``entries`` are ``(seq, item)`` pairs in FIFO order; returns
        ``(index, delay)``.
        """
        labels = tuple(_label(item) for _seq, item in entries)
        index = self._choose(time, labels, entries) if len(entries) > 1 \
            else 0
        delay = self._delay(time, labels[index], entries[index][1])
        self.trace.decisions.append(ScheduleDecision(
            step=self.steps, time=time, options=labels,
            chosen=index, delay=delay))
        self.steps += 1
        return index, delay

    def _choose(self, time: float, labels: tuple[str, ...],
                entries: list) -> int:
        return 0

    def _delay(self, time: float, label: str, item) -> float:
        return 0.0


class FifoScheduler(Scheduler):
    """The kernel's native ``(time, seq)`` order, made explicit."""


class RandomScheduler(Scheduler):
    """Seeded uniform tie-break shuffling plus bounded preemptions.

    ``preempt_prob`` is evaluated per scheduling point; a hit delays
    the chosen event by ``preempt_delay`` virtual seconds (pushing it
    behind anything due sooner), up to ``max_preemptions`` per run so
    exploration cannot livelock a workload.
    """

    kind = "random"

    def __init__(self, seed: int = 0, preempt_prob: float = 0.0,
                 preempt_delay: float = 100e-6,
                 max_preemptions: int = 50):
        super().__init__()
        self.seed = seed
        self.preempt_prob = preempt_prob
        self.preempt_delay = preempt_delay
        self.max_preemptions = max_preemptions
        self.preemptions = 0
        self._rng = np.random.Generator(np.random.PCG64(
            np.random.SeedSequence([0x5EED, seed])))

    def _choose(self, time, labels, entries):
        return int(self._rng.integers(0, len(entries)))

    def _delay(self, time, label, item):
        if (self.preempt_prob <= 0
                or self.preemptions >= self.max_preemptions):
            return 0.0
        if float(self._rng.random()) >= self.preempt_prob:
            return 0.0
        self.preemptions += 1
        return self.preempt_delay


class PctScheduler(Scheduler):
    """Probabilistic concurrency testing: random priorities plus
    ``depth - 1`` priority-change points.

    Tasks are identified by label (thread name / ``"timer"``).  Each
    new label draws a distinct random priority; at every scheduling
    point the highest-priority candidate runs (FIFO among its own
    events).  ``depth - 1`` change steps are pre-drawn uniformly from
    ``[1, expected_steps]``; when the step counter crosses one, the
    task chosen at that point is demoted below every existing
    priority.  ``depth=1`` degenerates to a fixed random priority
    order with no demotions.
    """

    kind = "pct"

    def __init__(self, seed: int = 0, depth: int = 3,
                 expected_steps: int = 1000):
        super().__init__()
        if depth < 1:
            raise ValueError(f"depth must be >= 1: {depth}")
        self.seed = seed
        self.depth = depth
        self._rng = np.random.Generator(np.random.PCG64(
            np.random.SeedSequence([0x9C7, seed])))
        self._priorities: dict[str, float] = {}
        #: Lowest priority handed out so far; demotions go below it.
        self._floor = 0.0
        self._change_steps = sorted(
            int(s) for s in self._rng.integers(
                1, max(2, expected_steps), size=depth - 1))

    def _priority(self, label: str) -> float:
        priority = self._priorities.get(label)
        if priority is None:
            priority = float(self._rng.random())
            self._priorities[label] = priority
        return priority

    def _choose(self, time, labels, entries):
        best = 0
        best_priority = self._priority(labels[0])
        for index in range(1, len(labels)):
            priority = self._priority(labels[index])
            if priority > best_priority:
                best, best_priority = index, priority
        if self._change_steps and self.steps >= self._change_steps[0]:
            self._change_steps.pop(0)
            self._floor -= 1.0
            self._priorities[labels[best]] = self._floor
        return best


class ReplayScheduler(Scheduler):
    """Replays a recorded decision prefix, FIFO afterwards.

    Replay is positional: determinism guarantees that re-running the
    same workload under the same decisions reproduces the same
    scheduling points, so decision ``i`` always meets the candidate
    set it was recorded against.  Truncating the prefix is how
    :func:`repro.explore.runner.shrink_schedule` searches for the
    minimal failing schedule: everything after the prefix falls back
    to the native FIFO order.
    """

    kind = "replay"

    def __init__(self, decisions: list[ScheduleDecision] | ScheduleTrace):
        super().__init__()
        if isinstance(decisions, ScheduleTrace):
            decisions = decisions.decisions
        self._decisions = list(decisions)

    def decide(self, time, entries):
        index, delay = 0, 0.0
        if self.steps < len(self._decisions):
            decision = self._decisions[self.steps]
            if decision.chosen < len(entries):
                index = decision.chosen
            delay = decision.delay
        labels = tuple(_label(item) for _seq, item in entries)
        self.trace.decisions.append(ScheduleDecision(
            step=self.steps, time=time, options=labels,
            chosen=index, delay=delay))
        self.steps += 1
        return index, delay
