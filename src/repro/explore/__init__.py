"""repro.explore — systematic schedule exploration for the kernel.

The deterministic kernel runs one interleaving per seed; this package
makes the schedule itself an input.  Pluggable schedulers
(:class:`RandomScheduler`, :class:`PctScheduler`, the degenerate
:class:`FifoScheduler`) perturb same-timestamp tie-breaking and inject
bounded delays at every kernel scheduling point, and the
:class:`ExplorationRunner` replays a workload across many seeds,
checking each run's recorded history for linearizability and
user-supplied invariants — with failing schedules reported by seed,
replayable decision-for-decision, and shrunk to a minimal failing
prefix.  See DESIGN.md §11 and the README's "Testing & exploration"
section.
"""

from repro.explore.runner import (
    SCHEDULERS,
    ExplorationReport,
    ExplorationRunner,
    ShrinkResult,
    Trial,
    TrialResult,
)
from repro.explore.scheduler import (
    FifoScheduler,
    PctScheduler,
    RandomScheduler,
    ReplayScheduler,
    ScheduleDecision,
    Scheduler,
    ScheduleTrace,
)

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "RandomScheduler",
    "PctScheduler",
    "ReplayScheduler",
    "ScheduleDecision",
    "ScheduleTrace",
    "SCHEDULERS",
    "ExplorationRunner",
    "ExplorationReport",
    "Trial",
    "TrialResult",
    "ShrinkResult",
]
