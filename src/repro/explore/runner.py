"""The exploration runner: one workload, many reproducible schedules.

:class:`ExplorationRunner` replays a workload closure for ``trials``
runs, each under a fresh kernel whose scheduler is seeded differently,
and checks every run with the linearizability checker plus
user-supplied invariants.  A failing trial reports its exploration
seed and full :class:`~repro.explore.scheduler.ScheduleTrace` (enough
to replay the exact interleaving), is greedily *shrunk* to a minimal
failing decision prefix, and can be dumped as a JSON artifact for CI.

Composition with the rest of the correctness tooling:

* **chaos** — ``fault_plans`` attaches a (per-trial)
  :class:`~repro.chaos.plan.FaultPlan` to each trial; the workload
  schedules it into its own :class:`~repro.chaos.injector.\
ChaosInjector`, so fault timing and schedule perturbation compose in
  one run.
* **trace** — ``trace=True`` enables the tracer per trial; each
  result carries its span list and exports a Chrome trace tagged with
  the trial's schedule id, byte-identical across replays of the same
  seed.
* **linearizability** — the trial's :class:`HistoryRecorder` feeds
  the (P-compositional) checker after every run.

The runner never runs the workload concurrently with itself: trials
are sequential, each in its own kernel, so exploration inherits the
simulation's determinism wholesale.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.chaos.plan import FaultPlan
from repro.explore.scheduler import (
    FifoScheduler,
    PctScheduler,
    RandomScheduler,
    ReplayScheduler,
    ScheduleDecision,
    Scheduler,
    ScheduleTrace,
)
from repro.linearizability.checker import LinearizabilityChecker
from repro.linearizability.history import HistoryRecorder, Operation
from repro.simulation.kernel import Kernel

#: Registry of named scheduler strategies (``scheduler="random"``...).
SCHEDULERS: dict[str, Callable[..., Scheduler]] = {
    "fifo": lambda seed=0, **opts: FifoScheduler(),
    "random": RandomScheduler,
    "pct": PctScheduler,
}


class Trial:
    """Everything one exploration trial hands to the workload."""

    def __init__(self, index: int, seed: int, workload_seed: int,
                 kernel: Kernel, scheduler: Scheduler,
                 fault_plan: FaultPlan | None = None):
        self.index = index
        #: Exploration seed: drives the scheduler only.
        self.seed = seed
        #: Kernel seed: drives the workload's modelled randomness.
        self.workload_seed = workload_seed
        self.kernel = kernel
        self.scheduler = scheduler
        #: Records DSO operations for the per-trial linearizability
        #: check; pass ``key=`` so the checker can partition by object.
        self.recorder = HistoryRecorder(clock=lambda: kernel.now)
        #: The fault plan this trial composes with (``fault_plans``
        #: option); the workload schedules it into its injector.
        self.fault_plan = fault_plan

    @property
    def schedule_id(self) -> str:
        """Replayable identity of this trial's schedule."""
        return (f"{self.scheduler.kind}:seed={self.seed}"
                f":wseed={self.workload_seed}")

    def environment(self, **kwargs) -> Any:
        """A :class:`repro.CrucialEnvironment` wired to this trial's
        kernel (convenience for workload closures)."""
        from repro.core.runtime import CrucialEnvironment

        return CrucialEnvironment(kernel=self.kernel, **kwargs)


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing schedule."""

    #: Minimal failing decision prefix (replay these, FIFO after).
    decisions: list[ScheduleDecision]
    #: Decisions the original failing schedule carried.
    original_length: int
    #: Re-runs the search spent.
    runs: int
    #: Whether the minimal prefix was re-verified to fail.
    verified: bool

    @property
    def prefix_length(self) -> int:
        return len(self.decisions)


@dataclass
class TrialResult:
    """One explored run: schedule identity, verdicts, evidence."""

    index: int
    seed: int
    workload_seed: int
    schedule_id: str
    fingerprint: str
    schedule: ScheduleTrace
    problems: list[str]
    value: Any = None
    error: str | None = None
    history: list[Operation] = field(default_factory=list)
    spans: list = field(default_factory=list)
    shrunk: ShrinkResult | None = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def chrome_trace(self) -> str:
        """Chrome/Perfetto trace of this trial, tagged with its
        schedule id (byte-identical across replays of the seed)."""
        from repro.trace.export import chrome_trace_json

        return chrome_trace_json(
            self.spans, metadata={"schedule_id": self.schedule_id,
                                  "fingerprint": self.fingerprint})

    def span_tree(self, **kwargs) -> str:
        from repro.trace.export import span_tree

        header = f"schedule {self.schedule_id} ({self.fingerprint})"
        return header + "\n" + span_tree(self.spans, **kwargs)

    def describe(self) -> str:
        lines = [f"trial {self.index} [{self.schedule_id}] "
                 f"fingerprint={self.fingerprint}: "
                 + ("ok" if self.ok else "FAILED")]
        lines += [f"  problem: {p.splitlines()[0]}" for p in self.problems]
        if self.shrunk is not None:
            lines.append(
                f"  shrunk to {self.shrunk.prefix_length} of "
                f"{self.shrunk.original_length} schedule decisions")
        return "\n".join(lines)


@dataclass
class ExplorationReport:
    """What :meth:`ExplorationRunner.run` returns."""

    results: list[TrialResult]

    @property
    def failures(self) -> list[TrialResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def distinct_schedules(self) -> int:
        """Number of distinct interleavings actually exercised."""
        return len({r.fingerprint for r in self.results})

    def summary(self) -> str:
        lines = [f"explored {len(self.results)} trial(s), "
                 f"{self.distinct_schedules} distinct schedule(s), "
                 f"{len(self.failures)} failure(s)"]
        for result in self.failures:
            lines.append(result.describe())
        return "\n".join(lines)

    def dump_artifacts(self, directory: str) -> list[str]:
        """Write one JSON artifact per failing trial (CI uploads
        these); returns the paths written."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for result in self.failures:
            shrunk = result.shrunk
            doc = {
                "schedule_id": result.schedule_id,
                "seed": result.seed,
                "workload_seed": result.workload_seed,
                "fingerprint": result.fingerprint,
                "problems": result.problems,
                "error": result.error,
                "decisions": [
                    {"step": d.step, "time": d.time,
                     "options": list(d.options), "chosen": d.chosen,
                     "delay": d.delay}
                    for d in result.schedule.decisions],
                "shrunk_prefix": None if shrunk is None else [
                    {"step": d.step, "time": d.time,
                     "options": list(d.options), "chosen": d.chosen,
                     "delay": d.delay}
                    for d in shrunk.decisions],
            }
            path = os.path.join(
                directory, f"failing-schedule-{result.index}-"
                           f"seed{result.seed}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, indent=1)
            paths.append(path)
        return paths


class ExplorationRunner:
    """Run one workload under many deterministic schedules.

    ``workload`` is a closure ``(trial) -> value``: it builds its
    deployment around ``trial.kernel`` (e.g. via
    ``trial.environment(...)``), drives it, and records shared-object
    calls through ``trial.recorder``.  After each trial the runner
    checks the recorded history with ``checker`` (if given) and every
    entry of ``invariants`` — callables ``(trial, value)`` returning a
    truth value (or raising ``AssertionError``) — and collects
    failures with their full schedule traces.

    Determinism contract: trial ``i`` always runs under exploration
    seed ``base_seed + i``; the same ``(workload, base_seed)`` pair
    yields byte-identical schedule decisions, histories, and trace
    exports.  Different seeds explore genuinely different
    interleavings (distinct schedule fingerprints).
    """

    def __init__(self, workload: Callable[[Trial], Any], *,
                 trials: int = 10, base_seed: int = 0,
                 scheduler: str = "random",
                 scheduler_opts: dict[str, Any] | None = None,
                 workload_seed: int = 0,
                 vary_workload_seed: bool = False,
                 checker: LinearizabilityChecker | None = None,
                 invariants: Iterable[Callable[[Trial, Any], Any]] = (),
                 fault_plans: "FaultPlan | Callable[[Trial], FaultPlan] | None" = None,
                 trace: bool = False, shrink: bool = True,
                 max_shrink_runs: int = 32,
                 artifact_dir: str | None = None,
                 stop_on_failure: bool = False):
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r}; "
                             f"choose from {sorted(SCHEDULERS)}")
        self.workload = workload
        self.trials = trials
        self.base_seed = base_seed
        self.scheduler_kind = scheduler
        self.scheduler_opts = dict(scheduler_opts or {})
        self.workload_seed = workload_seed
        self.vary_workload_seed = vary_workload_seed
        self.checker = checker
        self.invariants = tuple(invariants)
        self.fault_plans = fault_plans
        self.trace = trace
        self.shrink = shrink
        self.max_shrink_runs = max_shrink_runs
        self.artifact_dir = artifact_dir
        self.stop_on_failure = stop_on_failure

    # -- seeds ----------------------------------------------------------

    def _exploration_seed(self, index: int) -> int:
        return self.base_seed + index

    def _workload_seed(self, index: int) -> int:
        if self.vary_workload_seed:
            # Derived, not sequential: keeps workload streams disjoint
            # from the exploration seed sequence itself.
            return self.workload_seed + 10_007 * (index + 1)
        return self.workload_seed

    def _make_scheduler(self, seed: int) -> Scheduler:
        return SCHEDULERS[self.scheduler_kind](seed=seed,
                                               **self.scheduler_opts)

    # -- one trial ------------------------------------------------------

    def _execute(self, index: int, seed: int,
                 scheduler: Scheduler) -> TrialResult:
        workload_seed = self._workload_seed(index)
        kernel = Kernel(seed=workload_seed, scheduler=scheduler,
                        name=f"explore-{index}")
        if self.trace:
            kernel.enable_tracing()
        trial = Trial(index=index, seed=seed,
                      workload_seed=workload_seed, kernel=kernel,
                      scheduler=scheduler)
        if self.fault_plans is not None:
            trial.fault_plan = (self.fault_plans(trial)
                                if callable(self.fault_plans)
                                else self.fault_plans)
        problems: list[str] = []
        value, error = None, None
        try:
            value = self.workload(trial)
        except Exception as exc:  # noqa: BLE001 - a finding, not a crash
            error = f"{type(exc).__name__}: {exc}"
            problems.append(f"workload raised {error}")
        finally:
            spans = list(kernel.tracer.spans) if self.trace else []
            kernel.close()
        if error is None:
            problems += self._evaluate(trial, value)
        return TrialResult(
            index=index, seed=seed, workload_seed=workload_seed,
            schedule_id=trial.schedule_id,
            fingerprint=scheduler.trace.fingerprint(),
            schedule=scheduler.trace, problems=problems, value=value,
            error=error, history=list(trial.recorder.operations),
            spans=spans)

    def _evaluate(self, trial: Trial, value: Any) -> list[str]:
        problems = []
        if self.checker is not None and trial.recorder.operations:
            operations = trial.recorder.operations
            if not self.checker.check(operations):
                problems.append("history not linearizable:\n"
                                + self.checker.explain(operations))
        for invariant in self.invariants:
            name = getattr(invariant, "__name__", repr(invariant))
            try:
                verdict = invariant(trial, value)
            except AssertionError as exc:
                problems.append(f"invariant {name} failed: {exc}")
                continue
            if verdict is not None and not verdict:
                problems.append(f"invariant {name} returned falsy "
                                f"({verdict!r})")
        return problems

    # -- the exploration loop -------------------------------------------

    def run(self) -> ExplorationReport:
        results = []
        for index in range(self.trials):
            seed = self._exploration_seed(index)
            result = self._execute(index, seed,
                                   self._make_scheduler(seed))
            if not result.ok and self.shrink:
                result.shrunk = self._shrink(result)
            results.append(result)
            if not result.ok and self.stop_on_failure:
                break
        report = ExplorationReport(results=results)
        if self.artifact_dir is not None and report.failures:
            report.dump_artifacts(self.artifact_dir)
        return report

    def replay(self, result: TrialResult,
               prefix: int | None = None) -> TrialResult:
        """Re-run one trial's exact schedule (or a decision prefix of
        it, FIFO afterwards) — the reproduce-from-artifact path."""
        decisions = result.schedule.decisions
        if prefix is not None:
            decisions = decisions[:prefix]
        return self._execute(result.index, result.seed,
                             ReplayScheduler(list(decisions)))

    # -- shrinking ------------------------------------------------------

    def _shrink(self, failing: TrialResult) -> ShrinkResult | None:
        """Greedy prefix shrinking: find the shortest decision prefix
        that still fails when everything after it runs FIFO.

        Effective decisions are what matters — the search first drops
        the all-FIFO tail, then bisects on the remaining prefix
        length.  Bisection assumes prefix-monotonicity (usually true:
        the bug-triggering reordering lives in the prefix); the result
        is re-verified, so a non-monotone failure can only make the
        reported prefix longer than optimal, never wrong.
        """
        decisions = failing.schedule.decisions
        runs = 0

        def fails(prefix_length: int) -> bool:
            nonlocal runs
            runs += 1
            probe = self._execute(failing.index, failing.seed,
                                  ReplayScheduler(
                                      list(decisions[:prefix_length])))
            return not probe.ok

        # Drop the trailing decisions that already equal FIFO.
        effective_end = 0
        for position, decision in enumerate(decisions):
            if decision.chosen > 0 or decision.delay > 0:
                effective_end = position + 1
        if runs >= self.max_shrink_runs or not fails(effective_end):
            return None  # not schedule-reproducible; keep the raw trace
        low, high = 0, effective_end
        while low < high and runs < self.max_shrink_runs - 1:
            mid = (low + high) // 2
            if fails(mid):
                high = mid
            else:
                low = mid + 1
        verified = fails(high) if high != effective_end else True
        return ShrinkResult(decisions=list(decisions[:high]),
                            original_length=len(decisions), runs=runs,
                            verified=verified)
