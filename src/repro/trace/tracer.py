"""Deterministic distributed tracing over virtual time.

A :class:`Tracer` attached to the simulation :class:`Kernel` records
:class:`Span`s — named intervals of virtual time with a parent link, an
endpoint, and free-form attributes — for every hot path of the
simulated cloud: client dispatch, FaaS invocation (cold vs warm),
DSO RPC and SMR replication, network transfers, storage operations,
and synchronization waits.

Three properties the rest of the system relies on:

* **Zero sim-time cost.**  Tracing never sleeps, never consumes a
  random stream, and never schedules events: enabling it cannot change
  a single virtual timestamp.  When disabled the kernel carries a
  shared :data:`NULL_TRACER` whose methods are no-ops.
* **Determinism.**  Span ids come from a plain counter and timestamps
  from the (deterministic) virtual clock, so a fixed seed yields a
  byte-identical trace export.
* **Automatic context propagation.**  Each simulated thread keeps a
  stack of active spans; :meth:`Kernel.spawn` copies the spawner's
  active span to the child (see :meth:`Tracer.on_spawn`), and
  :class:`TracedRunnable` carries a :class:`TraceContext` *inside* the
  marshalled payload of a cloud thread, so container-side work nests
  under the client's dispatch span even across a pickle boundary.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.simulation import kernel as _kernel_mod

#: Span kinds, mirroring OpenTelemetry's vocabulary.
KINDS = ("client", "server", "internal", "producer", "consumer")


@dataclass(frozen=True)
class TraceContext:
    """The wire form of a span reference: what crosses ``ship()``.

    Picklable by construction — this is what :class:`TracedRunnable`
    embeds in a cloud thread's payload.
    """

    trace_id: str
    span_id: int


@dataclass
class TracedRunnable:
    """Envelope pairing a Runnable with its caller's trace context.

    The generic runner function unwraps it on the container side and
    re-attaches the context (see ``CrucialEnvironment._run_runnable``),
    which is how the trace survives the pickle round-trip every payload
    takes through :func:`repro.net.network.ship`.
    """

    runnable: Any
    context: TraceContext | None

    def run(self) -> Any:  # pragma: no cover - unwrapped before use
        run = getattr(self.runnable, "run", None)
        if callable(run):
            return run()
        return self.runnable()


class Span:
    """One named interval of virtual time in the trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "endpoint",
                 "start", "end", "attributes", "status", "error",
                 "thread", "thread_name")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 kind: str, endpoint: str | None, start: float,
                 attributes: dict[str, Any] | None,
                 thread: int, thread_name: str):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.endpoint = endpoint
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, Any] = attributes or {}
        self.status: str | None = None  # "ok" | "error" once ended
        self.error: str | None = None
        self.thread = thread
        self.thread_name = thread_name

    @property
    def duration(self) -> float:
        """Virtual seconds from start to end (0.0 while open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def open(self) -> bool:
        return self.end is None

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (chainable)."""
        self.attributes[key] = value
        return self

    def context(self, trace_id: str) -> TraceContext:
        return TraceContext(trace_id=trace_id, span_id=self.span_id)

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if not self.open else "open"
        return (f"<Span #{self.span_id} {self.name!r} {state} "
                f"parent={self.parent_id}>")


class _NullSpan:
    """Inert stand-in yielded by :class:`NullTracer` context managers."""

    __slots__ = ()
    span_id = None
    parent_id = None
    attributes: dict[str, Any] = {}
    duration = 0.0
    open = False

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _NullContext:
    """Reusable no-op context manager yielding :data:`NULL_SPAN`."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Kernels carry one of these by default, so instrumentation sites can
    call ``kernel.tracer.span(...)`` unconditionally without perturbing
    untraced runs.
    """

    enabled = False
    spans: tuple = ()

    def span(self, *args, **kwargs) -> _NullContext:
        return _NULL_CONTEXT

    def start_span(self, *args, **kwargs) -> _NullSpan:
        return NULL_SPAN

    def end_span(self, span, status: str | None = None,
                 error: str | None = None) -> None:
        pass

    def use(self, span) -> _NullContext:
        return _NULL_CONTEXT

    def attach(self, context) -> _NullContext:
        return _NULL_CONTEXT

    def current(self) -> None:
        return None

    def context(self) -> None:
        return None

    def wrap_payload(self, runnable: Any) -> Any:
        return runnable

    def on_spawn(self, thread) -> None:
        pass

    def on_thread_exit(self, thread) -> None:
        pass


NULL_TRACER = NullTracer()


@dataclass
class _ThreadState:
    """Per-sim-thread active-span bookkeeping."""

    stack: list[Span] = field(default_factory=list)
    #: Parent id inherited at spawn or installed by :meth:`attach`.
    inherited: int | None = None


class Tracer:
    """Records spans against a kernel's virtual clock."""

    enabled = True

    def __init__(self, kernel, service: str = "repro",
                 trace_id: str | None = None):
        self.kernel = kernel
        self.service = service
        self.trace_id = trace_id or f"{service}-{kernel.name}"
        self.spans: list[Span] = []
        self._ids = itertools.count(1)
        self._threads: dict[int, _ThreadState] = {}
        self._by_id: dict[int, Span] = {}

    # -- active-span bookkeeping -------------------------------------------

    def _state(self, tid: int) -> _ThreadState:
        state = self._threads.get(tid)
        if state is None:
            state = self._threads[tid] = _ThreadState()
        return state

    def _current_state(self) -> _ThreadState | None:
        thread = getattr(_kernel_mod._context, "thread", None)
        if thread is None:
            return None
        return self._threads.get(thread.tid)

    def current(self) -> Span | None:
        """The calling simulated thread's innermost active span."""
        state = self._current_state()
        if state and state.stack:
            return state.stack[-1]
        return None

    def context(self) -> TraceContext | None:
        """Wire context of the caller's active span (for payloads)."""
        parent = self._current_parent_id()
        if parent is None:
            return None
        return TraceContext(trace_id=self.trace_id, span_id=parent)

    def _current_parent_id(self) -> int | None:
        state = self._current_state()
        if state is None:
            return None
        if state.stack:
            return state.stack[-1].span_id
        return state.inherited

    # -- span lifecycle -----------------------------------------------------

    def start_span(self, name: str, kind: str = "internal",
                   endpoint: str | None = None,
                   attributes: dict[str, Any] | None = None,
                   parent: "Span | TraceContext | int | None" = None,
                   activate: bool = True) -> Span:
        """Open a span at the current virtual time.

        With ``activate=True`` (the default) the span is pushed onto
        the calling simulated thread's stack, becoming the implicit
        parent of nested spans.  Pass ``activate=False`` for spans that
        end on a different thread (e.g. a CloudThread's dispatch span).
        """
        if parent is None:
            parent_id = self._current_parent_id()
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        elif isinstance(parent, TraceContext):
            parent_id = parent.span_id
        else:
            parent_id = parent
        thread = getattr(_kernel_mod._context, "thread", None)
        tid = thread.tid if thread is not None else 0
        tname = thread.name if thread is not None else "host"
        span = Span(next(self._ids), parent_id, name, kind, endpoint,
                    self.kernel.now, attributes, tid, tname)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        if activate and thread is not None:
            self._state(tid).stack.append(span)
        return span

    def end_span(self, span: Span, status: str | None = None,
                 error: str | None = None) -> None:
        """Close ``span`` at the current virtual time.

        Idempotent; removes the span from the calling thread's active
        stack if present (tolerating out-of-order ends).
        """
        if span is None or span is NULL_SPAN or span.end is not None:
            return
        span.end = self.kernel.now
        span.error = error
        span.status = status or ("error" if error else "ok")
        state = self._current_state()
        if state is not None and span in state.stack:
            state.stack.remove(span)

    @contextmanager
    def span(self, name: str, kind: str = "internal",
             endpoint: str | None = None,
             attributes: dict[str, Any] | None = None,
             parent: "Span | TraceContext | int | None" = None
             ) -> Iterator[Span]:
        """Context manager: open a span, close it on exit.

        An escaping exception — including ``BaseException``s like a
        simulated crash unwinding — marks the span ``error`` with the
        exception's type name before re-raising.
        """
        span = self.start_span(name, kind=kind, endpoint=endpoint,
                               attributes=attributes, parent=parent)
        try:
            yield span
        except BaseException as exc:
            self.end_span(span, error=type(exc).__name__)
            raise
        else:
            self.end_span(span)

    @contextmanager
    def use(self, span: Span) -> Iterator[Span]:
        """Make an already-open span the caller's active span.

        Pushes without ending on exit — for spans whose lifetime spans
        threads (the owner ends them explicitly via :meth:`end_span`).
        """
        thread = getattr(_kernel_mod._context, "thread", None)
        if thread is None:
            yield span
            return
        stack = self._state(thread.tid).stack
        stack.append(span)
        try:
            yield span
        finally:
            if span in stack:
                stack.remove(span)

    @contextmanager
    def attach(self, context: TraceContext | None) -> Iterator[None]:
        """Adopt a remote parent carried inside a payload.

        If the caller's active span chain already contains the context
        (the in-process fast path: the container handler runs in the
        invoking simulated thread), this is a no-op — nesting is
        already correct.  Otherwise the context becomes the thread's
        inherited parent for the duration, exactly what a real tracing
        SDK does when it extracts wire context on the server side.
        """
        thread = getattr(_kernel_mod._context, "thread", None)
        if (context is None or thread is None
                or self._is_ancestor(context.span_id)):
            yield
            return
        state = self._state(thread.tid)
        previous = state.inherited
        state.inherited = context.span_id
        try:
            yield
        finally:
            state.inherited = previous

    def _is_ancestor(self, span_id: int) -> bool:
        """Is ``span_id`` on the caller's active ancestry chain?"""
        current = self._current_parent_id()
        while current is not None:
            if current == span_id:
                return True
            parent_span = self._by_id.get(current)
            current = parent_span.parent_id if parent_span else None
        return False

    # -- payload propagation ------------------------------------------------

    def wrap_payload(self, runnable: Any) -> Any:
        """Envelope a Runnable with the caller's trace context."""
        return TracedRunnable(runnable, self.context())

    # -- kernel hooks --------------------------------------------------------

    def on_spawn(self, thread) -> None:
        """Called by :meth:`Kernel.spawn`: the child simulated thread
        inherits the spawner's active span as its initial parent."""
        parent = self._current_parent_id()
        if parent is not None:
            self._state(thread.tid).inherited = parent

    def on_thread_exit(self, thread) -> None:
        """Drop per-thread state when a simulated thread finishes."""
        self._threads.pop(thread.tid, None)

    # -- queries -------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Spans with no parent, in start order."""
        ids = {span.span_id for span in self.spans}
        return [span for span in self.spans
                if span.parent_id is None or span.parent_id not in ids]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name_prefix: str) -> list[Span]:
        """Spans whose name starts with ``name_prefix``, in start order."""
        return [s for s in self.spans if s.name.startswith(name_prefix)]

    def subtree(self, span: Span) -> list[Span]:
        """``span`` plus every descendant, in start order."""
        children: dict[int, list[Span]] = {}
        for s in self.spans:
            if s.parent_id is not None:
                children.setdefault(s.parent_id, []).append(s)
        out: list[Span] = []
        frontier = [span]
        while frontier:
            node = frontier.pop()
            out.append(node)
            frontier.extend(children.get(node.span_id, ()))
        out.sort(key=lambda s: s.span_id)
        return out


def trace_enabled() -> bool:
    """Is tracing active in the caller's context?

    True when the calling simulated thread's kernel — or, outside
    simulated code, the active :class:`CrucialEnvironment`'s kernel —
    carries a real (non-null) tracer.
    """
    kernel = None
    if _kernel_mod.in_sim_thread():
        kernel = _kernel_mod.current_kernel()
    else:
        from repro.core import runtime
        env = runtime._active_env
        if env is not None:
            kernel = env.kernel
    return kernel is not None and kernel.tracer.enabled
