"""repro.trace — deterministic distributed tracing in virtual time.

See :mod:`repro.trace.tracer` for the tracer/span model and
:mod:`repro.trace.export` for the Chrome trace-event and ASCII
exporters.  Enable per environment with
``CrucialEnvironment(trace_enabled=True)`` or per kernel with
``kernel.enable_tracing()``.
"""

from repro.trace.tracer import (
    KINDS,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    TracedRunnable,
    Tracer,
    trace_enabled,
)
from repro.trace.export import (
    chrome_trace_json,
    critical_path,
    critical_path_summary,
    span_tree,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "KINDS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceContext",
    "TracedRunnable",
    "Tracer",
    "trace_enabled",
    "to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "span_tree",
    "critical_path",
    "critical_path_summary",
]
