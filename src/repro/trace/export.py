"""Trace exporters: Chrome trace-event JSON and ASCII span trees.

The Chrome export loads directly into ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev): each simulated endpoint becomes a process
row and each simulated thread a track, so a benchmark run reads as a
real distributed-system timeline.  The ASCII renderers feed
``repro.metrics.report`` so every harness can print an explainable
span tree next to its result table.

Both exports are byte-deterministic for a fixed seed: spans are
emitted in span-id order, ids are counters, and timestamps come from
the virtual clock.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.trace.tracer import Span, Tracer


def _spans_of(source: "Tracer | Iterable[Span]") -> list[Span]:
    if isinstance(source, Tracer):
        return list(source.spans)
    return list(source)


def _index(spans: Sequence[Span]) -> tuple[list[Span], dict[int, list[Span]]]:
    """Roots (in id order) and parent-id -> children map."""
    ids = {span.span_id for span in spans}
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    return roots, children


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def to_chrome_trace(source: "Tracer | Iterable[Span]",
                    metadata: dict[str, Any] | None = None) -> dict[str, Any]:
    """Render spans as a Chrome trace-event document (dict).

    Uses complete ("X") events with microsecond timestamps; endpoints
    map to pids (with ``process_name`` metadata) and simulated threads
    to tids, so Perfetto shows one track per simulated thread grouped
    by endpoint.  Spans still open at export time are emitted with
    zero duration and ``"unfinished": true``.  ``metadata`` lands in
    the document's ``otherData`` section (the exploration runner tags
    exports with their schedule id this way).
    """
    spans = _spans_of(source)
    pids: dict[str, int] = {}
    # Remap simulated-thread ids to dense per-export indices: the
    # global SimThread counter depends on how many kernels ran earlier
    # in the process, and must not leak into the (byte-deterministic)
    # export.
    tids: dict[int, int] = {}
    events: list[dict[str, Any]] = []
    thread_names: dict[tuple[int, int], str] = {}
    for span in spans:
        endpoint = span.endpoint or "host"
        pid = pids.setdefault(endpoint, len(pids) + 1)
        tid = tids.setdefault(span.thread, len(tids) + 1)
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status is not None:
            args["status"] = span.status
        if span.error is not None:
            args["error"] = span.error
        for key in sorted(span.attributes):
            args[key] = span.attributes[key]
        if span.open:
            args["unfinished"] = True
        events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "args": args,
        })
        thread_names.setdefault((pid, tid), span.thread_name)
    meta_events: list[dict[str, Any]] = []
    for endpoint, pid in pids.items():
        meta_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": endpoint},
        })
    for (pid, tid), tname in thread_names.items():
        meta_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": tname},
        })
    document = {"traceEvents": meta_events + events,
                "displayTimeUnit": "ms"}
    if metadata:
        document["otherData"] = dict(metadata)
    return document


def chrome_trace_json(source: "Tracer | Iterable[Span]",
                      metadata: dict[str, Any] | None = None) -> str:
    """The Chrome trace document serialized deterministically."""
    return json.dumps(to_chrome_trace(source, metadata=metadata),
                      sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: str, source: "Tracer | Iterable[Span]",
                       metadata: dict[str, Any] | None = None) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(source, metadata=metadata))
    return path


# ---------------------------------------------------------------------------
# ASCII span tree and critical path
# ---------------------------------------------------------------------------


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _span_label(span: Span) -> str:
    parts = [span.name]
    if span.endpoint:
        parts.append(f"@{span.endpoint}")
    parts.append(_fmt_duration(span.duration))
    notes = []
    if span.status == "error":
        notes.append(f"ERROR:{span.error}" if span.error else "ERROR")
    for key in ("cold_start", "attempt", "retries"):
        if key in span.attributes:
            notes.append(f"{key}={span.attributes[key]}")
    if notes:
        parts.append("[" + " ".join(notes) + "]")
    return " ".join(parts)


def span_tree(source: "Tracer | Iterable[Span]", max_depth: int = 12,
              min_duration: float = 0.0, max_children: int = 24) -> str:
    """Render the trace as an indented ASCII tree.

    Children below ``min_duration`` are elided (summarized as one
    ``... n spans elided`` line), as are children beyond
    ``max_children`` per node — keeping quickstart output readable.
    """
    spans = _spans_of(source)
    roots, children = _index(spans)
    lines: list[str] = []

    def render(span: Span, prefix: str, is_last: bool, depth: int) -> None:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + _span_label(span))
        if depth >= max_depth:
            return
        kids = children.get(span.span_id, [])
        kept = [k for k in kids if k.duration >= min_duration][:max_children]
        elided = len(kids) - len(kept)
        extension = "    " if is_last else "|   "
        for index, kid in enumerate(kept):
            last = index == len(kept) - 1 and elided == 0
            render(kid, prefix + extension, last, depth + 1)
        if elided > 0:
            lines.append(prefix + extension + f"`-- ... {elided} span(s) "
                         "elided")

    for index, root in enumerate(roots):
        lines.append(_span_label(root))
        kids = children.get(root.span_id, [])
        kept = [k for k in kids if k.duration >= min_duration][:max_children]
        elided = len(kids) - len(kept)
        for kid_index, kid in enumerate(kept):
            last = kid_index == len(kept) - 1 and elided == 0
            render(kid, "", last, 1)
        if elided > 0:
            lines.append(f"`-- ... {elided} span(s) elided")
        if index < len(roots) - 1:
            lines.append("")
    return "\n".join(lines)


def critical_path(source: "Tracer | Iterable[Span]",
                  root: Span | None = None) -> list[tuple[Span, float]]:
    """The chain of spans that determines the end-to-end latency.

    Starting from ``root`` (default: the longest finished root — the
    one that dominates end-to-end latency), repeatedly descend into the
    child that finishes last — the one the parent's completion waited
    on.  Returns ``(span, self_time)`` pairs, where ``self_time`` is
    the span's duration not covered by the next span on the path: the
    decomposition the paper's Fig. 7b/Table 2 report.
    """
    spans = _spans_of(source)
    roots, children = _index(spans)
    if root is None:
        closed = [r for r in roots if not r.open]
        if not closed:
            return []
        root = max(closed, key=lambda s: (s.duration, s.span_id))
    path: list[tuple[Span, float]] = []
    node = root
    while node is not None:
        kids = [k for k in children.get(node.span_id, []) if not k.open]
        if kids:
            nxt = max(kids, key=lambda s: (s.end, s.span_id))
            path.append((node, node.duration - nxt.duration))
            node = nxt
        else:
            path.append((node, node.duration))
            node = None
    return path


def critical_path_summary(source: "Tracer | Iterable[Span]",
                          root: Span | None = None) -> str:
    """Render the critical path, one span per line with self-time."""
    path = critical_path(source, root=root)
    if not path:
        return "critical path: (no finished spans)"
    total = path[0][0].duration
    lines = [f"critical path ({_fmt_duration(total)} end-to-end):"]
    for depth, (span, self_time) in enumerate(path):
        share = (self_time / total * 100.0) if total > 0 else 0.0
        lines.append(f"  {'  ' * depth}{span.name} "
                     f"self={_fmt_duration(self_time)} ({share:.0f}%)")
    return "\n".join(lines)
