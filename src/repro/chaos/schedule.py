"""Randomized chaos schedules, replayable from the kernel seed.

The generator draws every decision — fault times, kinds, targets,
magnitudes — from one named stream of the kernel's
:class:`~repro.simulation.rng.RngRegistry`, so a schedule is a pure
function of ``(kernel seed, stream name, generator arguments)``: two
kernels built with the same seed produce identical plans, and a chaotic
run replays exactly.  This is the property the determinism tests in
``tests/chaos`` pin down.

By default the generator keeps at most one DSO node down at a time
(every ``crash_node`` is paired with a ``restart_node`` after
``recovery`` seconds, and nodes already down are not re-crashed), so a
generated schedule exercises exactly the paper's Section 4.4 failure
model: ``rf - 1`` joint failures with ``rf = 2``.
"""

from __future__ import annotations

from typing import Sequence

from repro.chaos.plan import FaultPlan
from repro.simulation.kernel import Kernel


class ChaosScheduleGenerator:
    """Draws :class:`FaultPlan`\\ s from a seeded kernel RNG stream."""

    def __init__(self, kernel: Kernel, name: str = "chaos"):
        self._rng = kernel.rng.stream(f"chaos.{name}")

    def generate(self, duration: float, *,
                 nodes: Sequence[str] = (),
                 links: Sequence[tuple[str, str]] = (),
                 functions: Sequence[str] = (),
                 mean_faults: int = 4,
                 recovery: float = 8.0,
                 kinds: Sequence[str] | None = None) -> FaultPlan:
        """Generate ~``mean_faults`` faults over ``[0, duration)``.

        ``nodes``/``links``/``functions`` name the allowed targets;
        kinds without a target class are never drawn.  ``kinds``
        restricts the drawn fault kinds further.  Crashed nodes
        restart after ``recovery`` seconds and at most one node is
        down at any moment.
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0: {duration}")
        candidates = []
        if nodes:
            candidates += ["crash_node", "slow_node"]
        if links:
            candidates += ["link_latency", "drop_messages", "partition"]
        if functions:
            candidates += ["kill_container"]
        if kinds is not None:
            candidates = [kind for kind in candidates if kind in kinds]
        if not candidates:
            raise ValueError("no fault kinds are drawable: give nodes, "
                             "links or functions (and compatible kinds)")
        count = max(1, int(self._rng.poisson(mean_faults)))
        times = sorted(float(t) for t in
                       self._rng.uniform(0.0, duration, size=count))
        plan = FaultPlan()
        down_until = {name: -1.0 for name in nodes}
        for at in times:
            kind = candidates[int(self._rng.integers(0, len(candidates)))]
            if kind == "crash_node":
                if any(until > at for until in down_until.values()):
                    continue  # single-failure mode: one node down at a time
                up = [n for n in nodes if down_until[n] <= at]
                if len(up) < 2:
                    continue  # never take the last node down
                victim = up[int(self._rng.integers(0, len(up)))]
                plan.add(at, "crash_node", victim)
                plan.add(at + recovery, "restart_node", victim)
                down_until[victim] = at + recovery
            elif kind == "slow_node":
                up = [n for n in nodes if down_until[n] <= at]
                if not up:
                    continue
                victim = up[int(self._rng.integers(0, len(up)))]
                plan.add(at, "slow_node", victim,
                         factor=float(self._rng.uniform(2.0, 10.0)),
                         duration=float(self._rng.uniform(0.5, 3.0)))
            elif kind == "link_latency":
                link = links[int(self._rng.integers(0, len(links)))]
                plan.add(at, "link_latency", tuple(link),
                         factor=float(self._rng.uniform(5.0, 50.0)),
                         duration=float(self._rng.uniform(0.5, 3.0)))
            elif kind == "drop_messages":
                link = links[int(self._rng.integers(0, len(links)))]
                plan.add(at, "drop_messages", tuple(link),
                         rate=float(self._rng.uniform(0.1, 0.9)),
                         duration=float(self._rng.uniform(0.5, 3.0)))
            elif kind == "partition":
                link = links[int(self._rng.integers(0, len(links)))]
                plan.add(at, "partition",
                         groups=((link[0],), (link[1],)),
                         duration=float(self._rng.uniform(0.5, 3.0)))
            elif kind == "kill_container":
                function = functions[
                    int(self._rng.integers(0, len(functions)))]
                plan.add(at, "kill_container", function)
        return plan
