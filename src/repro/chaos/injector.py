"""The chaos injector: executes fault plans against a wired simulation.

Each fault is applied by its own simulated thread started exactly at
the fault's virtual time (``Kernel.spawn_at``), so faults may block —
crashing a node releases parked waiters, a timed fault sleeps until
its end time and reverts itself.  Every injection and reversal is
appended to a :class:`FaultLog`; with a fixed kernel seed two runs of
the same plan produce byte-identical logs, which the chaos test suite
asserts.

The injector only *targets* layers it was given; a plan naming a layer
the injector lacks fails fast at schedule time, not silently mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.chaos.plan import Fault, FaultPlan
from repro.simulation.kernel import Kernel

if TYPE_CHECKING:  # imported lazily to keep layer dependencies one-way
    from repro.dso.layer import DsoLayer
    from repro.faas.platform import FaasPlatform
    from repro.net.network import Network


@dataclass(frozen=True)
class FaultEvent:
    """One line of the fault log: a fault was injected or reverted."""

    time: float
    phase: str  # "inject" | "revert" | "noop"
    kind: str
    target: Any
    detail: tuple[tuple[str, Any], ...]

    def line(self) -> str:
        detail = " ".join(f"{k}={v!r}" for k, v in self.detail)
        return (f"t={self.time:.6f} {self.phase} {self.kind} "
                f"target={self.target!r}" + (f" {detail}" if detail else ""))


class FaultLog:
    """Append-only record of everything the injector did."""

    def __init__(self):
        self.events: list[FaultEvent] = []

    def append(self, event: FaultEvent) -> None:
        self.events.append(event)

    def lines(self) -> list[str]:
        return [event.line() for event in self.events]

    def counts(self, phase: str = "inject") -> dict[str, int]:
        """Number of logged events per fault kind, for one phase."""
        totals: dict[str, int] = {}
        for event in self.events:
            if event.phase == phase:
                totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def __len__(self) -> int:
        return len(self.events)


class ChaosInjector:
    """Schedules and applies the faults of a :class:`FaultPlan`."""

    def __init__(self, kernel: Kernel, network: "Network | None" = None,
                 dso: "DsoLayer | None" = None,
                 platform: "FaasPlatform | None" = None,
                 name: str = "chaos"):
        self.kernel = kernel
        self.network = network
        self.dso = dso
        self.platform = platform
        self.name = name
        self.log = FaultLog()
        self._scheduled = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, plan: FaultPlan) -> None:
        """Arm every fault of ``plan`` at its virtual time.

        Must be called before (or while) the kernel runs; fault times
        are absolute virtual times.  Can be called repeatedly to
        compose plans.
        """
        for fault in plan:
            self._check_targets(fault)
            index = self._scheduled
            self._scheduled += 1
            self.kernel.spawn_at(
                fault.at, self._apply, fault, daemon=True,
                name=f"{self.name}-{index}-{fault.kind}")

    def _check_targets(self, fault: Fault) -> None:
        needs = {
            "crash_node": self.dso, "restart_node": self.dso,
            "slow_node": self.dso, "kill_container": self.platform,
            "partition": self.network, "heal": self.network,
            "link_latency": self.network, "drop_messages": self.network,
        }
        if needs[fault.kind] is None:
            raise ValueError(
                f"fault {fault.kind!r} needs a layer this injector "
                "was not given")

    # -- application --------------------------------------------------------

    def _apply(self, fault: Fault) -> None:
        handler = getattr(self, f"_do_{fault.kind}")
        handler(fault)

    def _record(self, phase: str, fault: Fault, **detail: Any) -> None:
        merged = dict(fault.params)
        merged.update(detail)
        self.log.append(FaultEvent(
            time=self.kernel.now, phase=phase, kind=fault.kind,
            target=fault.target,
            detail=tuple(sorted(merged.items()))))

    def _do_crash_node(self, fault: Fault) -> None:
        node = self.dso.nodes.get(fault.target)
        if node is None or not node.alive:
            self._record("noop", fault)
            return
        self._record("inject", fault)
        self.dso.crash_node(fault.target)

    def _do_restart_node(self, fault: Fault) -> None:
        node = self.dso.nodes.get(fault.target)
        if node is None or node.alive:
            self._record("noop", fault)
            return
        self.dso.restart_node(fault.target)
        self._record("inject", fault)

    def _do_partition(self, fault: Fault) -> None:
        group_a, group_b = (tuple(g) for g in fault.params["groups"])
        self.network.partition(set(group_a), set(group_b))
        self._record("inject", fault)
        duration = fault.duration
        if duration is not None:
            _sleep(duration)
            self.network.unpartition(set(group_a), set(group_b))
            self._record("revert", fault)

    def _do_heal(self, fault: Fault) -> None:
        self.network.heal()
        self._record("inject", fault)

    def _do_link_latency(self, fault: Fault) -> None:
        src, dst = fault.target
        factor = fault.params["factor"]
        previous = self.network.link(src, dst)
        self.network.set_link(src, dst, previous.scaled(factor))
        self._record("inject", fault)
        _sleep(fault.params["duration"])
        self.network.set_link(src, dst, previous)
        self._record("revert", fault)

    def _do_drop_messages(self, fault: Fault) -> None:
        src, dst = fault.target
        self.network.set_drop_rate(src, dst, fault.params["rate"])
        self._record("inject", fault)
        duration = fault.duration
        if duration is not None:
            _sleep(duration)
            self.network.set_drop_rate(src, dst, 0.0)
            self._record("revert", fault)

    def _do_kill_container(self, fault: Fault) -> None:
        explicit = fault.params.get("container")
        victims = ([explicit] if explicit
                   else self.platform.busy_containers(fault.target))
        killed = [name for name in victims
                  if self.platform.kill_container(name)]
        self._record("inject" if killed else "noop", fault, killed=killed)

    def _do_slow_node(self, fault: Fault) -> None:
        node = self.dso.nodes.get(fault.target)
        if node is None or not node.alive:
            self._record("noop", fault)
            return
        node.set_slow(fault.params["factor"])
        self._record("inject", fault)
        _sleep(fault.params["duration"])
        node.slow_factor = 1.0
        self._record("revert", fault)


def _sleep(duration: float) -> None:
    from repro.simulation.thread import sleep

    sleep(duration)
