"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`Fault` entries —
``(at_time, kind, target, params)`` — describing *what* goes wrong and
*when*, independent of any particular deployment.  The
:class:`~repro.chaos.injector.ChaosInjector` executes a plan against a
wired simulation; the :mod:`~repro.chaos.schedule` generator draws
randomized plans from the kernel's seeded RNG streams so chaotic runs
replay exactly.

Fault kinds
-----------

=================  =========================  ==========================
kind               target                     params
=================  =========================  ==========================
``crash_node``     DSO node name              —
``restart_node``   DSO node name              —
``partition``      —                          ``groups=(seq_a, seq_b)``,
                                              optional ``duration``
``heal``           —                          —
``link_latency``   ``(src, dst)``             ``factor``, ``duration``
``drop_messages``  ``(src, dst)``             ``rate``, optional
                                              ``duration``
``kill_container`` FaaS function name         optional ``container``
``slow_node``      DSO node name              ``factor``, ``duration``
=================  =========================  ==========================

Timed faults (``duration``) revert automatically; the injector logs
both the injection and the reversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

FAULT_KINDS = frozenset({
    "crash_node",
    "restart_node",
    "partition",
    "heal",
    "link_latency",
    "drop_messages",
    "kill_container",
    "slow_node",
})

#: Kinds whose effect ends by itself when ``duration`` is given.
TIMED_KINDS = frozenset({
    "partition", "link_latency", "drop_messages", "slow_node",
})

#: Parameters a kind cannot be injected without.
_REQUIRED_PARAMS = {
    "partition": ("groups",),
    "link_latency": ("factor", "duration"),
    "drop_messages": ("rate",),
    "slow_node": ("factor", "duration"),
}

#: Kinds that act on a named node / function / link.
_TARGETED_KINDS = frozenset({
    "crash_node", "restart_node", "kill_container",
    "link_latency", "drop_messages", "slow_node",
})


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: inject ``kind`` on ``target`` at ``at``."""

    at: float
    kind: str
    target: Any = ""
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(FAULT_KINDS)}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0: {self.at}")
        duration = self.params.get("duration")
        if duration is not None and duration <= 0:
            raise ValueError(f"fault duration must be > 0: {duration}")
        if "duration" in self.params and self.kind not in TIMED_KINDS:
            raise ValueError(
                f"{self.kind!r} does not take a duration "
                "(pair it with an explicit restart/heal fault)")
        for param in _REQUIRED_PARAMS.get(self.kind, ()):
            if param not in self.params:
                raise ValueError(f"{self.kind!r} requires {param!r}")
        if self.kind in _TARGETED_KINDS and not self.target:
            raise ValueError(f"{self.kind!r} requires a target")

    @property
    def duration(self) -> float | None:
        return self.params.get("duration")

    def describe(self) -> str:
        params = {k: v for k, v in sorted(self.params.items())}
        return f"t={self.at:.6f} {self.kind} target={self.target!r} {params}"


class FaultPlan:
    """An ordered collection of faults (sorted by injection time).

    Build one declaratively::

        plan = (FaultPlan()
                .add(5.0, "crash_node", "dso-1")
                .add(9.0, "restart_node", "dso-1")
                .add(12.0, "slow_node", "dso-0", factor=8.0, duration=3.0))

    Equal-time faults apply in insertion order (the sort is stable),
    so a plan is itself a total order — one ingredient of replayable
    chaos runs.
    """

    def __init__(self, faults: list[Fault] | None = None):
        self._faults: list[Fault] = list(faults or [])

    def add(self, at: float, kind: str, target: Any = "",
            **params: Any) -> "FaultPlan":
        """Append a fault; returns ``self`` for chaining."""
        self._faults.append(Fault(at, kind, target, params))
        return self

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan containing both plans' faults."""
        return FaultPlan(self.faults + other.faults)

    @property
    def faults(self) -> list[Fault]:
        return sorted(self._faults, key=lambda f: f.at)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.faults == other.faults

    def describe(self) -> str:
        return "\n".join(fault.describe() for fault in self.faults)
