"""Deterministic fault injection for the simulated cloud.

The paper's headline fault-tolerance claims (Section 4.4, Fig. 8) are
about behaviour *under failure*: FaaS retries with identical payloads,
``rf - 1`` joint storage failures, recovery after node loss.  This
package turns those scenarios into first-class, replayable inputs:

* :class:`FaultPlan` / :class:`Fault` — a declarative schedule of
  ``(at_time, kind, target, params)`` entries;
* :class:`ChaosInjector` — executes a plan against a wired simulation
  (network, DSO layer, FaaS platform) and logs every injection;
* :class:`ChaosScheduleGenerator` — draws randomized plans from the
  kernel's seeded RNG streams, so chaotic runs replay byte-identically.

See ``tests/chaos`` for the invariants asserted under injected faults
and the README's "Fault injection" section for a walkthrough.
"""

from repro.chaos.injector import ChaosInjector, FaultEvent, FaultLog
from repro.chaos.plan import FAULT_KINDS, Fault, FaultPlan
from repro.chaos.schedule import ChaosScheduleGenerator

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultEvent",
    "FaultLog",
    "ChaosInjector",
    "ChaosScheduleGenerator",
]
