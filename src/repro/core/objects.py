"""The built-in shared-object library (Table 1).

Each entry pairs a *server class* (the state machine living on DSO
nodes) with a *proxy class* (the typed client stub).  All objects are
wait-free and linearizable: every invocation completes in a bounded
number of steps at its primary replica, under the per-object lock.

Side-effect-free methods carry the :func:`~repro.dso.cache.readonly`
marker, making them eligible for the lease-based client cache when a
layer enables it (``read_cache=True``); mutating methods never carry
it, so they revoke outstanding leases before acknowledging.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.proxy import DsoProxy
from repro.dso.cache import readonly

# ---------------------------------------------------------------------------
# Server-side state machines
# ---------------------------------------------------------------------------


class _AtomicValue:
    """Shared scalar with read-modify-write primitives."""

    def __init__(self, value: Any = 0):
        self.value = value

    @readonly
    def get(self) -> Any:
        return self.value

    def set(self, value: Any) -> None:
        self.value = value

    def get_and_set(self, value: Any) -> Any:
        previous = self.value
        self.value = value
        return previous

    def compare_and_set(self, expected: Any, update: Any) -> bool:
        if self.value == expected:
            self.value = update
            return True
        return False

    def add_and_get(self, delta) -> Any:
        self.value += delta
        return self.value

    def get_and_add(self, delta) -> Any:
        previous = self.value
        self.value += delta
        return previous


class _AtomicInt(_AtomicValue):
    def __init__(self, value: int = 0):
        super().__init__(int(value))


class _AtomicLong(_AtomicValue):
    def __init__(self, value: int = 0):
        super().__init__(int(value))


class _AtomicBoolean:
    def __init__(self, value: bool = False):
        self.value = bool(value)

    @readonly
    def get(self) -> bool:
        return self.value

    def set(self, value: bool) -> None:
        self.value = bool(value)

    def compare_and_set(self, expected: bool, update: bool) -> bool:
        if self.value == bool(expected):
            self.value = bool(update)
            return True
        return False


class _AtomicReference(_AtomicValue):
    def __init__(self, value: Any = None):
        super().__init__(value)


class _AtomicByteArray:
    def __init__(self, size: int):
        self.data = bytearray(size)

    @readonly
    def get(self, index: int) -> int:
        return self.data[index]

    def set(self, index: int, value: int) -> None:
        self.data[index] = value

    @readonly
    def length(self) -> int:
        return len(self.data)

    @readonly
    def to_bytes(self) -> bytes:
        return bytes(self.data)

    def fill(self, value: int) -> None:
        for i in range(len(self.data)):
            self.data[i] = value


class _SharedList:
    def __init__(self, items: Iterable[Any] = ()):
        self.items = list(items)

    def append(self, item: Any) -> None:
        self.items.append(item)

    def extend(self, items: Iterable[Any]) -> None:
        self.items.extend(items)

    @readonly
    def get(self, index: int) -> Any:
        return self.items[index]

    def set(self, index: int, item: Any) -> None:
        self.items[index] = item

    @readonly
    def get_all(self) -> list[Any]:
        return list(self.items)

    @readonly
    def size(self) -> int:
        return len(self.items)

    def clear(self) -> None:
        self.items.clear()


class _SharedMap:
    def __init__(self, items: dict | None = None):
        self.items = dict(items or {})

    def put(self, key: Any, value: Any) -> Any:
        previous = self.items.get(key)
        self.items[key] = value
        return previous

    @readonly
    def get(self, key: Any, default: Any = None) -> Any:
        return self.items.get(key, default)

    def put_if_absent(self, key: Any, value: Any) -> Any:
        if key not in self.items:
            self.items[key] = value
            return None
        return self.items[key]

    def remove(self, key: Any) -> Any:
        return self.items.pop(key, None)

    @readonly
    def contains_key(self, key: Any) -> bool:
        return key in self.items

    @readonly
    def keys(self) -> list[Any]:
        return list(self.items.keys())

    @readonly
    def entries(self) -> list[tuple[Any, Any]]:
        return list(self.items.items())

    @readonly
    def size(self) -> int:
        return len(self.items)

    def merge(self, key: Any, value: Any,
              fn: Callable[[Any, Any], Any] | None = None) -> Any:
        """In-store aggregate: combine ``value`` into ``key``'s entry.

        With no combiner, numeric addition is used — the fine-grained
        "aggregate small granules of updates" pattern of Section 4.2.
        """
        if key not in self.items:
            self.items[key] = value
        elif fn is not None:
            self.items[key] = fn(self.items[key], value)
        else:
            self.items[key] = self.items[key] + value
        return self.items[key]


# ---------------------------------------------------------------------------
# Client proxies
# ---------------------------------------------------------------------------


class _ScalarProxy(DsoProxy):
    def get(self):
        return self._invoke("get")

    def set(self, value) -> None:
        self._invoke("set", value)

    def get_and_set(self, value):
        return self._invoke("get_and_set", value)

    def compare_and_set(self, expected, update) -> bool:
        return self._invoke("compare_and_set", expected, update)


class _NumericProxy(_ScalarProxy):
    def add_and_get(self, delta):
        return self._invoke("add_and_get", delta)

    def get_and_add(self, delta):
        return self._invoke("get_and_add", delta)

    def increment_and_get(self):
        return self._invoke("add_and_get", 1)

    def decrement_and_get(self):
        return self._invoke("add_and_get", -1)

    def int_value(self):
        return int(self._invoke("get"))


class AtomicInt(_NumericProxy):
    """A linearizable shared integer."""

    _server_cls = _AtomicInt


class AtomicLong(_NumericProxy):
    """A linearizable shared long (Listing 1's counter)."""

    _server_cls = _AtomicLong


class AtomicBoolean(DsoProxy):
    """A linearizable shared boolean flag."""

    _server_cls = _AtomicBoolean

    def get(self) -> bool:
        return self._invoke("get")

    def set(self, value: bool) -> None:
        self._invoke("set", value)

    def compare_and_set(self, expected: bool, update: bool) -> bool:
        return self._invoke("compare_and_set", expected, update)


class AtomicReference(_ScalarProxy):
    """A linearizable shared reference to any picklable value."""

    _server_cls = _AtomicReference


class AtomicByteArray(DsoProxy):
    """A linearizable shared byte array with per-cell access."""

    _server_cls = _AtomicByteArray

    def get(self, index: int) -> int:
        return self._invoke("get", index)

    def set(self, index: int, value: int) -> None:
        self._invoke("set", index, value)

    def length(self) -> int:
        return self._invoke("length")

    def to_bytes(self) -> bytes:
        return self._invoke("to_bytes")

    def fill(self, value: int) -> None:
        self._invoke("fill", value)


class SharedList(DsoProxy):
    """A linearizable shared list."""

    _server_cls = _SharedList

    def append(self, item) -> None:
        self._invoke("append", item)

    def extend(self, items) -> None:
        self._invoke("extend", list(items))

    def get(self, index: int):
        return self._invoke("get", index)

    def set(self, index: int, item) -> None:
        self._invoke("set", index, item)

    def get_all(self) -> list:
        return self._invoke("get_all")

    def size(self) -> int:
        return self._invoke("size")

    def clear(self) -> None:
        self._invoke("clear")


class SharedMap(DsoProxy):
    """A linearizable shared map with in-store merge."""

    _server_cls = _SharedMap

    def put(self, key, value):
        return self._invoke("put", key, value)

    def get(self, key, default=None):
        return self._invoke("get", key, default)

    def put_if_absent(self, key, value):
        return self._invoke("put_if_absent", key, value)

    def remove(self, key):
        return self._invoke("remove", key)

    def contains_key(self, key) -> bool:
        return self._invoke("contains_key", key)

    def keys(self) -> list:
        return self._invoke("keys")

    def entries(self) -> list:
        return self._invoke("entries")

    def size(self) -> int:
        return self._invoke("size")

    def merge(self, key, value, fn=None):
        return self._invoke("merge", key, value, fn)
