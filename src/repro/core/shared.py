"""User-defined shared objects — the ``@Shared`` annotation.

A plain Python class becomes a distributed shared object by wrapping
an instance recipe in :func:`shared`: methods then execute remotely on
the DSO servers, enabling fine-grained updates and in-store aggregates
(``.add()``, ``.update()``, ``.merge()``, Table 1).

Requirements mirror the paper's: the class must be serializable
(picklable, i.e. defined at module level) and deterministic if
replicated (state machine replication executes each method at every
replica).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.proxy import GenericProxy


def shared(server_cls: type, key: str, *ctor_args: Any,
           persistent: bool = False, rf: int | None = None,
           **ctor_kwargs: Any) -> GenericProxy:
    """Create a proxy to a shared instance of ``server_cls``.

    The Python rendering of::

        @Shared(key="delta")
        GlobalDelta delta = new GlobalDelta();

    is::

        delta = shared(GlobalDelta, key="delta")

    ``persistent=True`` replicates the object (``rf`` defaults to 2)
    so it outlives the application and survives ``rf - 1`` failures.
    The object is created server-side on first access; two threads
    touching the same ``(type, key)`` share one instance.
    """
    return GenericProxy(server_cls, key, *ctor_args,
                        persistent=persistent, rf=rf, **ctor_kwargs)


class SharedField:
    """The ``@Shared`` *field annotation*, as a descriptor.

    Section 3.1: "Crucial refers to an object with a key crafted from
    the field's name of the encompassing object.  The programmer can
    override this definition by explicitly writing @Shared(key=k)."

    ::

        class PiEstimator:
            counter = SharedField(AtomicLong)          # key: "PiEstimator.counter"
            total = SharedField(AtomicLong, key="t")   # explicit override

    Works with both proxy classes (``AtomicLong``) and plain shared
    classes (wrapped via :func:`shared`).  All instances of the
    encompassing class see the same shared object, exactly like a
    Java field annotated ``@Shared``.
    """

    def __init__(self, target: type, *ctor_args: Any, key: str | None = None,
                 persistent: bool = False, rf: int | None = None,
                 **ctor_kwargs: Any):
        self.target = target
        self.ctor_args = ctor_args
        self.ctor_kwargs = ctor_kwargs
        self.key = key
        self.persistent = persistent
        self.rf = rf
        self._owner_name = None
        self._field_name = None

    def __set_name__(self, owner: type, name: str) -> None:
        self._owner_name = owner.__name__
        self._field_name = name
        if self.key is None:
            self.key = f"{owner.__name__}.{name}"

    def __get__(self, instance: Any, owner: type | None = None):
        if self.key is None:
            raise AttributeError("SharedField used outside a class body")
        from repro.core.proxy import DsoProxy

        if isinstance(self.target, type) and \
                issubclass(self.target, DsoProxy):
            return self.target(self.key, *self.ctor_args,
                               persistent=self.persistent, rf=self.rf,
                               **self.ctor_kwargs)
        return GenericProxy(self.target, self.key, *self.ctor_args,
                            persistent=self.persistent, rf=self.rf,
                            **self.ctor_kwargs)


def dso_costs(**method_costs: Callable[..., float] | float):
    """Class decorator declaring per-method server CPU costs.

    The simulation executes method bodies in native Python (fast), so
    CPU-heavy methods declare their *modelled* cost explicitly::

        @dso_costs(update=lambda ws: 1e-7 * len(ws))
        class Weights:
            ...

    Values may be constants or callables of the method's arguments.
    """

    def decorate(cls: type) -> type:
        table = dict(getattr(cls, "__dso_costs__", {}))
        for name, cost in method_costs.items():
            if not callable(getattr(cls, name, None)):
                raise AttributeError(
                    f"{cls.__name__} has no method {name!r} to cost")
            table[name] = cost if callable(cost) else (
                lambda *a, _c=cost, **k: _c)
        cls.__dso_costs__ = table
        return cls

    return decorate
