"""CloudThread: serverless functions invoked like threads.

"Every time a CloudThread is started, a standard Java thread is
spawned in the client application with some extra logic [that calls] a
generic serverless function to execute the Runnable code attached to
the CloudThread.  The Java thread remains blocked until the call to
the serverless function terminates." (Section 4.3)

The Python rendering spawns a simulated thread that performs a
synchronous FaaS invocation; ``join()`` therefore gives the familiar
fork/join pattern.  Remote failures propagate to the joiner; the
retry policy (Section 4.4) controls automatic re-invocation with the
exact same input — soundness under re-execution (idempotence) is the
application's responsibility, typically via a shared iteration
counter.

With the DSO read cache enabled (``CrucialEnvironment(read_cache=
True)``), the container a CloudThread's body lands on matters: each
FaaS container keeps its own leased-snapshot cache, so consecutive
invocations served by the same warm container hit state the previous
body already read, while a cold start — or a container reclaimed by
keep-alive expiry or chaos — begins with an empty cache (the platform
notifies the DSO layer via ``on_container_reclaim``).

When tracing is enabled, every CloudThread contributes one
``cloudthread:<name>`` span covering dispatch through completion, with
each invocation attempt as a child — so retries appear as sibling
spans — and the trace context travels *inside* the marshalled payload
(:class:`repro.trace.TracedRunnable`), nesting container-side work
under the client's dispatch span.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.core.retry import RetryPolicy
from repro.core.runtime import RUNNER_FUNCTION, current_environment
from repro.errors import FaasError, RetriesExhaustedError, SimTimeoutError
from repro.simulation.kernel import current_kernel, current_thread

__all__ = ["CloudThread", "RetryPolicy", "run_all"]


class CloudThread:
    """A thread whose body runs as a serverless function invocation."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, runnable: Any, name: str | None = None,
                 retry_policy: RetryPolicy | None = None,
                 function_name: str = RUNNER_FUNCTION,
                 idempotency_key: str | None = None):
        self.runnable = runnable
        self.name = name or f"cloud-thread-{next(CloudThread._ids)}"
        self.retry_policy = retry_policy or RetryPolicy()
        self.function_name = function_name
        #: When set, every attempt runs under the named DSO session
        #: ``idempotency_key``: a re-invocation after a mid-body crash
        #: *replays* the cached replies of the DSO calls the dead
        #: attempt already made instead of re-executing them — the
        #: whole body becomes safely re-runnable without
        #: application-level idempotence (see repro.core.idempotency).
        self.idempotency_key = idempotency_key
        self.attempts = 0
        self._sim_thread = None
        self._span = None

    @property
    def _thread(self):
        """Deprecated accessor for the backing simulated thread.

        Reaching into the simulation internals bypasses the public
        contract (``join``/``result``/``is_alive``); it remains only
        for backwards compatibility.
        """
        warnings.warn(
            "CloudThread._thread is deprecated; use join(), result(), "
            "done or is_alive() instead", DeprecationWarning, stacklevel=2)
        return self._sim_thread

    def start(self) -> "CloudThread":
        """Dispatch the invocation; returns immediately.

        Charges the client-side dispatch cost (SDK call, payload
        marshalling) in the *caller*: starting many cloud threads from
        one client serializes these dispatches, which is the thread
        creation overhead Fig. 2b and Fig. 3 attribute sub-linear
        scaling to.
        """
        if self._sim_thread is not None:
            raise RuntimeError(f"{self.name} already started")
        env = current_environment()
        kernel = current_kernel()
        tracer = kernel.tracer
        # The root span for this cloud thread's whole remote lifetime:
        # started here (client side, before the dispatch sleep), ended
        # by the invocation thread when the last attempt settles.
        self._span = tracer.start_span(
            f"cloudthread:{self.name}", kind="client",
            endpoint=env.client_endpoint,
            attributes={"function": self.function_name}, activate=False)
        with tracer.use(self._span):
            with tracer.span("cloudthread.dispatch", kind="client",
                             endpoint=env.client_endpoint):
                current_thread().sleep(
                    env.config.faas_timings.dispatch_overhead)
            # spawn() propagates the active span (the root) to the
            # invocation thread, so attempts nest under it.
            self._sim_thread = kernel.spawn(
                self._invoke_with_retries, env, name=self.name)
        if tracer.enabled:
            # Attribute the root span to the invocation thread's track
            # so concurrent cloud threads render as parallel timelines.
            self._span.thread = self._sim_thread.tid
            self._span.thread_name = self._sim_thread.name
        return self

    def _invoke_with_retries(self, env) -> Any:
        tracer = env.kernel.tracer
        try:
            result = self._attempt_loop(env, tracer)
        except BaseException as exc:
            tracer.end_span(self._span, error=type(exc).__name__)
            raise
        tracer.end_span(self._span)
        return result

    def _attempt_loop(self, env, tracer) -> Any:
        last_error: FaasError | None = None
        for attempt in range(self.retry_policy.max_retries + 1):
            self.attempts = attempt + 1
            try:
                with tracer.span("cloudthread.attempt", kind="client",
                                 endpoint=env.client_endpoint,
                                 attributes={"attempt": attempt + 1}):
                    # The trace context rides inside the marshalled
                    # payload: container-side spans re-attach to this
                    # attempt even across the pickle boundary.
                    payload = tracer.wrap_payload(self.runnable)
                    return self._invoke_attempt(env, payload)
            except FaasError as exc:
                last_error = exc
                if attempt < self.retry_policy.max_retries:
                    rng = env.kernel.rng.stream("cloudthread.retry")
                    current_thread().sleep(
                        self.retry_policy.delay(attempt, rng))
        raise RetriesExhaustedError(
            f"{self.name}: failed {self.attempts} time(s); "
            f"last error: {last_error}") from last_error

    def _invoke_attempt(self, env, payload) -> Any:
        if self.idempotency_key is None:
            return env.platform.invoke(
                env.client_endpoint, self.function_name, payload)
        # The body executes on this thread (the platform runs the
        # handler synchronously here), so pinning the named session now
        # covers every DSO call the body makes; each attempt re-enters
        # the same name and replays the previous attempt's replies.
        with env.dso.session(self.idempotency_key):
            return env.platform.invoke(
                env.client_endpoint, self.function_name, payload)

    def join(self, timeout: float | None = None) -> bool:
        """Block until the remote invocation completes.

        Returns ``True`` once the thread has finished — re-raising the
        function's failure in the joiner, mirroring how "the error is
        propagated back to the client application" — or ``False`` if
        ``timeout`` virtual seconds elapsed first (the thread is still
        running; ``join`` may be called again).
        """
        if self._sim_thread is None:
            raise RuntimeError(f"{self.name} was never started")
        try:
            self._sim_thread.join(timeout)
        except SimTimeoutError:
            if timeout is None:  # pragma: no cover - defensive
                raise
            return False
        return True

    def result(self) -> Any:
        """The Runnable's return value; joins implicitly if needed.

        Matching ``concurrent.futures`` expectations: calling
        ``result()`` on a running thread blocks until it completes,
        re-raising its failure.
        """
        if self._sim_thread is None:
            raise RuntimeError(f"{self.name} was never started")
        if not self._sim_thread.done:
            self.join()
        return self._sim_thread.result()

    @property
    def done(self) -> bool:
        return self._sim_thread is not None and self._sim_thread.done

    def is_alive(self) -> bool:
        """True while the invocation is still in flight
        (``threading.Thread.is_alive`` semantics)."""
        return self._sim_thread is not None and not self._sim_thread.done


def run_all(runnables: list[Any],
            retry_policy: RetryPolicy | None = None) -> list[Any]:
    """Fork/join helper: start one CloudThread per runnable, join all.

    The Listing 1 pattern (``threads.forEach(start); forEach(join)``)
    as one call.  Applies ``retry_policy`` to every thread and returns
    the runnables' results in order — no caller-side ``join`` needed
    (``result()`` joins implicitly).
    """
    threads = [CloudThread(r, retry_policy=retry_policy) for r in runnables]
    for thread in threads:
        thread.start()
    return [thread.result() for thread in threads]
