"""CloudThread: serverless functions invoked like threads.

"Every time a CloudThread is started, a standard Java thread is
spawned in the client application with some extra logic [that calls] a
generic serverless function to execute the Runnable code attached to
the CloudThread.  The Java thread remains blocked until the call to
the serverless function terminates." (Section 4.3)

The Python rendering spawns a simulated thread that performs a
synchronous FaaS invocation; ``join()`` therefore gives the familiar
fork/join pattern.  Remote failures propagate to the joiner; the
retry policy (Section 4.4) controls automatic re-invocation with the
exact same input — soundness under re-execution (idempotence) is the
application's responsibility, typically via a shared iteration
counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.runtime import RUNNER_FUNCTION, current_environment
from repro.errors import FaasError, RetriesExhaustedError
from repro.simulation.kernel import current_kernel, current_thread


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side control over function re-invocation (Section 4.4)."""

    max_retries: int = 0
    backoff: float = 1.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"negative retries: {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"negative backoff: {self.backoff}")


class CloudThread:
    """A thread whose body runs as a serverless function invocation."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, runnable: Any, name: str | None = None,
                 retry_policy: RetryPolicy | None = None,
                 function_name: str = RUNNER_FUNCTION):
        self.runnable = runnable
        self.name = name or f"cloud-thread-{next(CloudThread._ids)}"
        self.retry_policy = retry_policy or RetryPolicy()
        self.function_name = function_name
        self.attempts = 0
        self._thread = None

    def start(self) -> "CloudThread":
        """Dispatch the invocation; returns immediately.

        Charges the client-side dispatch cost (SDK call, payload
        marshalling) in the *caller*: starting many cloud threads from
        one client serializes these dispatches, which is the thread
        creation overhead Fig. 2b and Fig. 3 attribute sub-linear
        scaling to.
        """
        if self._thread is not None:
            raise RuntimeError(f"{self.name} already started")
        env = current_environment()
        current_thread().sleep(env.config.faas_timings.dispatch_overhead)
        self._thread = current_kernel().spawn(
            self._invoke_with_retries, env, name=self.name)
        return self

    def _invoke_with_retries(self, env) -> Any:
        last_error: FaasError | None = None
        for attempt in range(self.retry_policy.max_retries + 1):
            self.attempts = attempt + 1
            try:
                return env.platform.invoke(
                    env.client_endpoint, self.function_name, self.runnable)
            except FaasError as exc:
                last_error = exc
                if attempt < self.retry_policy.max_retries:
                    current_thread().sleep(self.retry_policy.backoff)
        raise RetriesExhaustedError(
            f"{self.name}: failed {self.attempts} time(s); "
            f"last error: {last_error}") from last_error

    def join(self, timeout: float | None = None) -> None:
        """Block until the remote invocation completes.

        Re-raises the function's failure in the joiner, mirroring how
        "the error is propagated back to the client application".
        """
        if self._thread is None:
            raise RuntimeError(f"{self.name} was never started")
        self._thread.join(timeout)

    def result(self) -> Any:
        """The Runnable's return value (after join)."""
        if self._thread is None:
            raise RuntimeError(f"{self.name} was never started")
        return self._thread.result()

    @property
    def done(self) -> bool:
        return self._thread is not None and self._thread.done


def run_all(runnables: list[Any],
            retry_policy: RetryPolicy | None = None) -> list[Any]:
    """Fork/join helper: start one CloudThread per runnable, join all.

    The Listing 1 pattern (``threads.forEach(start); forEach(join)``)
    as one call.  Returns the runnables' results in order.
    """
    threads = [CloudThread(r, retry_policy=retry_policy) for r in runnables]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [thread.result() for thread in threads]
