"""Idempotent re-execution helpers built on named DSO sessions.

The paper makes re-execution soundness the application's problem:
"function code is required to be idempotent" under the retry policy
(Section 4.4), which in practice means hand-rolling iteration counters
or write-once flags around every side effect.  These helpers remove
that burden for side effects that live in the DSO layer.

:func:`once` pins a *named session* (see :mod:`repro.dso.session`)
around a code block.  Within the block, every shared-object invocation
is stamped with a deterministic ``(session, seq)`` pair; the servers
cache each reply.  Re-entering the same name — after a container kill,
a CloudThread retry, anything — replays the same stamps, so the calls
that already happened return their *original* replies without
executing again, and execution resumes for real at the first call the
previous run never completed.  A deterministic block over shared
objects thereby becomes exactly-once end to end.

:class:`IdempotentStep` is the callable packaging of the same idea,
convenient as a CloudThread runnable or a named pipeline stage.

Sessions hold server-side state (the cached replies); call
:func:`retire` / :meth:`IdempotentStep.retire` once a step's effects
can no longer be retried, so the tables can free the entries before
the eviction cap does it for them.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.core.runtime import current_environment, current_location


@contextmanager
def once(name: str) -> Iterator[str]:
    """Run the enclosed block under the named session ``name``.

    Yields the wire-level session id.  Blocks must be deterministic
    given their cached replies (same DSO calls in the same order) —
    the same contract state machine replication already imposes on
    shared-object methods.
    """
    env = current_environment()
    with env.dso.session(name) as sid:
        yield sid


def retire(name: str) -> int:
    """Forget the named session on every live DSO node.

    Returns the number of containers that held state for it.
    """
    env = current_environment()
    return env.dso.retire_session(current_location(), name)


class IdempotentStep:
    """A named, safely re-runnable unit of work over shared objects.

    ``IdempotentStep("stage-3", fn)`` behaves like ``fn`` except that
    re-running it (e.g. as a retried CloudThread body) replays the DSO
    effects of earlier runs instead of repeating them::

        step = IdempotentStep(f"aggregate-{i}", body)
        CloudThread(step, retry_policy=RetryPolicy(max_retries=3)).start()

    The step is also a fine Runnable: ``run()`` delegates to the
    wrapped callable under the session.
    """

    def __init__(self, name: str, fn: Callable[..., Any]):
        self.name = name
        self.fn = fn

    def run(self, *args: Any, **kwargs: Any) -> Any:
        with once(self.name):
            return self.fn(*args, **kwargs)

    __call__ = run

    def retire(self) -> int:
        """Release the step's cached replies on the servers."""
        return retire(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdempotentStep({self.name!r}, {self.fn!r})"
