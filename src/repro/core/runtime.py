"""The Crucial runtime environment.

One :class:`CrucialEnvironment` wires a whole simulated deployment —
network, FaaS platform, DSO layer, object store, queue/notification
services — around a simulation kernel, deploys the generic runner
function that executes ``Runnable`` payloads (Section 5), and tracks
*where* the current simulated thread executes (client process or a
specific function container) so that shared-object proxies charge the
right network links.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.config import Config, DEFAULT_CONFIG
from repro.dso.layer import DsoLayer
from repro.errors import SimulationError
from repro.faas.platform import FaasPlatform, FunctionContext
from repro.metrics.cost import CostLedger
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.simulation.kernel import Kernel
from repro.storage.notification import NotificationService
from repro.storage.object_store import ObjectStore
from repro.storage.queue_service import QueueService

#: The generic function that runs Runnables (Section 5: "our generic
#: function establishes the connection to the DSO layer" then executes
#: the user-defined Runnable via reflection).
RUNNER_FUNCTION = "crucial-runner"

_active_env: "CrucialEnvironment | None" = None
_location = threading.local()


def current_environment() -> "CrucialEnvironment":
    """The environment the calling code runs inside."""
    if _active_env is None:
        raise SimulationError(
            "no active CrucialEnvironment: use 'with env:' or env.run()")
    return _active_env


def current_location() -> str:
    """Network endpoint of the calling simulated thread.

    ``client`` in the client application; the container's endpoint
    inside a cloud function.  Proxies use this as the RPC source.
    """
    return getattr(_location, "name", "client")


def _set_location(name: str, cpu_share: float = 1.0) -> None:
    _location.name = name
    _location.cpu_share = cpu_share


def current_cpu_share() -> float:
    """CPU share of the current execution site (1.0 = one full vCPU).

    Inside a cloud function this reflects the memory-proportional CPU
    allocation (1792 MB = 1 vCPU); in the client process it is 1.0.
    """
    return getattr(_location, "cpu_share", 1.0)


def compute(cpu_seconds: float, jitter_sigma: float = 0.0) -> None:
    """Charge ``cpu_seconds`` of single-vCPU work at the current site.

    This is how workload code accounts for modelled computation (the
    nominal-scale ML passes): wall time is ``cpu_seconds / cpu_share``
    with optional lognormal jitter (stragglers).
    """
    from repro.simulation.kernel import current_kernel, current_thread

    if cpu_seconds <= 0:
        return
    wall = cpu_seconds / current_cpu_share()
    if jitter_sigma > 0:
        rng = current_kernel().rng.stream("runtime.compute")
        wall *= float(rng.lognormal(0.0, jitter_sigma))
    current_thread().sleep(wall)


class CrucialEnvironment:
    """A fully wired simulated cloud running Crucial."""

    def __init__(self, kernel: Kernel | None = None, seed: int = 0,
                 dso_nodes: int = 1, config: Config = DEFAULT_CONFIG,
                 function_memory_mb: int = 1792,
                 copy_messages: bool = True,
                 trace_enabled: bool = False,
                 read_cache: bool = False):
        self._owns_kernel = kernel is None
        self.kernel = kernel or Kernel(seed=seed)
        if trace_enabled:
            self.kernel.enable_tracing()
        self.config = config
        self.network = Network(
            self.kernel,
            default_latency=LatencyModel(100e-6, sigma=0.05),
            copy_messages=copy_messages)
        self.client_endpoint = "client"
        self.network.ensure_endpoint(self.client_endpoint)
        self.platform = FaasPlatform(self.kernel, self.network, config)
        #: ``read_cache=True`` turns on lease-based client-side caching
        #: of read-only DSO methods (repro.dso.cache); off by default,
        #: preserving the paper's always-ship read path.
        self.dso = DsoLayer(self.kernel, self.network, config,
                            copy_instances=copy_messages,
                            read_cache=read_cache)
        # Cache lifetime == container lifetime: when the platform
        # reclaims a container (keep-alive expiry, chaos kill), the DSO
        # layer drops that endpoint's leased-snapshot cache.
        self.platform.on_container_reclaim(self.dso.drop_endpoint_cache)
        #: One account for the whole deployment: every storage backend
        #: created by this environment bills into it, and
        #: ``repro.metrics.cost_summary(env.cost_ledger)`` renders the
        #: per-tier split.
        self.cost_ledger = CostLedger()
        self.object_store = ObjectStore(self.kernel, config,
                                        ledger=self.cost_ledger)
        self.queue_service = QueueService(self.kernel, config)
        self.notification = NotificationService(
            self.kernel, self.queue_service, config)
        for _ in range(dso_nodes):
            self.dso.add_node()
        self.platform.deploy(RUNNER_FUNCTION, self._run_runnable,
                             memory_mb=function_memory_mb)
        self._data_grid = None
        self._redis = None
        self._tiered_store = None
        self._previous_env: CrucialEnvironment | None = None

    def data_grid(self, nodes: int = 1):
        """A plain Infinispan-like KV grid (created on first use)."""
        if self._data_grid is None:
            from repro.storage.datagrid import DataGrid

            self._data_grid = DataGrid(self.kernel, self.network,
                                       nodes=nodes, config=self.config)
        return self._data_grid

    def redis(self, shards: int = 1):
        """A Redis deployment (created on first use)."""
        if self._redis is None:
            from repro.storage.kvstore import RedisCluster

            self._redis = RedisCluster(self.kernel, self.network,
                                       shards=shards, config=self.config)
        return self._redis

    def transaction(self, rf: int = 1):
        """A read-atomic multi-object transaction scoped to the
        calling location (client process or function container).

        ``with env.transaction() as txn:`` — reads inside the block
        observe an atomic-visibility snapshot, ``txn.write`` buffers,
        and a clean exit commits every write atomically and
        exactly-once (see :mod:`repro.dso.txn` and DESIGN.md §14).
        """
        return self.dso.transaction(current_location(), rf=rf)

    def tiered_store(self):
        """Heat-tracked tiered storage (created on first use): an
        in-memory hot tier stacked over this environment's object
        store, both billing into ``cost_ledger``."""
        if self._tiered_store is None:
            from repro.storage.backend import MemoryStore
            from repro.storage.tiering import TieredStore

            hot = MemoryStore(self.kernel, self.config, name="memory",
                              ledger=self.cost_ledger)
            self._tiered_store = TieredStore(
                self.kernel, [hot, self.object_store], self.config,
                ledger=self.cost_ledger)
        return self._tiered_store

    # -- the generic runner function -------------------------------------------

    def _run_runnable(self, ctx: FunctionContext, runnable: Any) -> Any:
        """Execute a shipped Runnable inside a function container.

        When the payload is a :class:`repro.trace.TracedRunnable`, the
        embedded trace context — which crossed the (simulated) wire
        inside the marshalled payload — is re-attached first, so the
        container-side ``runnable:*`` span nests under the client's
        dispatch span even across the pickle boundary.
        """
        from repro.trace.tracer import TracedRunnable

        tracer = self.kernel.tracer
        context = None
        if isinstance(runnable, TracedRunnable):
            context = runnable.context
            runnable = runnable.runnable
        previous_name = current_location()
        previous_share = current_cpu_share()
        _set_location(ctx.endpoint, ctx.cpu_share)
        try:
            with tracer.attach(context):
                with tracer.span(
                        f"runnable:{type(runnable).__name__}",
                        kind="server", endpoint=ctx.endpoint):
                    run = getattr(runnable, "run", None)
                    if callable(run):
                        return run()
                    if callable(runnable):
                        return runnable()
                    raise TypeError(
                        f"payload of type {type(runnable).__name__} "
                        "is not runnable")
        finally:
            _set_location(previous_name, previous_share)

    # -- lifecycle -----------------------------------------------------------------

    def activate(self) -> None:
        global _active_env
        if _active_env is not None and _active_env is not self:
            raise SimulationError("another CrucialEnvironment is active")
        _active_env = self

    def deactivate(self) -> None:
        global _active_env
        if _active_env is self:
            _active_env = None

    def __enter__(self) -> "CrucialEnvironment":
        self.activate()
        return self

    def __exit__(self, *exc_info) -> None:
        self.deactivate()
        if self._owns_kernel:
            self.kernel.close()

    def run(self, main: Callable[[], Any], *args, **kwargs) -> Any:
        """Run ``main`` as the client application to completion."""
        self.activate()

        def client_main():
            _set_location(self.client_endpoint)
            return main(*args, **kwargs)

        return self.kernel.run_main(client_main)

    def close(self) -> None:
        self.deactivate()
        if self._owns_kernel:
            self.kernel.close()

    # -- convenience -------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kernel.now

    def pre_warm(self, count: int,
                 function_name: str = RUNNER_FUNCTION) -> None:
        """Provision warm containers (the paper's pre-measurement
        global barrier that excludes cold starts)."""
        self.platform.pre_warm(function_name, count)
