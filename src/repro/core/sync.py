"""Synchronization objects (Table 1).

Semantically equivalent to ``java.util.concurrent``'s primitives, but
hosted in the DSO layer: a call blocks at the client while the server
side parks it with wait()/notify() (Section 5).  The cyclic barrier
uses the internal-counter-plus-generation scheme the paper describes.

Synchronization objects are ephemeral and never replicated
(footnote 2): if their hosting node dies, waiters get an error.
"""

from __future__ import annotations

from typing import Any

from repro.core.proxy import DsoProxy
from repro.dso.layer import ServerObject
from repro.dso.server import DsoCall
from repro.errors import BrokenBarrierError, FutureCancelledError

# ---------------------------------------------------------------------------
# Server-side state machines
# ---------------------------------------------------------------------------


class _CyclicBarrier(ServerObject):
    """Counter + generation: a new generation starts when the last
    party arrives (Section 5)."""

    def __init__(self, parties: int):
        if parties <= 0:
            raise ValueError(f"parties must be positive: {parties}")
        self.parties = parties
        self.count = 0
        self.generation = 0
        self.broken_generations: set[int] = set()
        self._trip = None  # ServerCondition, created lazily after attach

    def _condition(self):
        if self._trip is None:
            self._trip = self.new_condition()
        return self._trip

    def await_(self, call: DsoCall) -> int:
        """Block until ``parties`` threads arrive; returns the arrival
        index (0 = last to arrive, as in Java)."""
        condition = self._condition()
        generation = self.generation
        self.count += 1
        index = self.parties - self.count
        if self.count == self.parties:
            self.count = 0
            self.generation += 1
            condition.notify_all()
            return index
        while (generation == self.generation
               and generation not in self.broken_generations):
            condition.wait(call)
        if generation in self.broken_generations:
            raise BrokenBarrierError("barrier broke while waiting")
        return index

    def reset(self, call: DsoCall) -> None:
        """Break the current generation (its waiters see
        BrokenBarrierError) and start a fresh, usable one."""
        if self.count > 0:
            self.broken_generations.add(self.generation)
        self.count = 0
        self.generation += 1
        self._condition().notify_all()

    def get_parties(self, call: DsoCall) -> int:
        return self.parties

    def get_number_waiting(self, call: DsoCall) -> int:
        return self.count


class _Semaphore(ServerObject):
    def __init__(self, permits: int):
        if permits < 0:
            raise ValueError(f"negative permits: {permits}")
        self.permits = permits
        self._available = None

    def _condition(self):
        if self._available is None:
            self._available = self.new_condition()
        return self._available

    def acquire(self, call: DsoCall, permits: int = 1) -> None:
        condition = self._condition()
        while self.permits < permits:
            condition.wait(call)
        self.permits -= permits

    def try_acquire(self, call: DsoCall, permits: int = 1) -> bool:
        if self.permits >= permits:
            self.permits -= permits
            return True
        return False

    def release(self, call: DsoCall, permits: int = 1) -> None:
        self.permits += permits
        self._condition().notify_all()

    def available_permits(self, call: DsoCall) -> int:
        return self.permits


class _Future(ServerObject):
    """A single-assignment cell; getters block until it is set.

    This is the object behind the Fig. 6 "future" synchronization
    strategies: the consumer responds immediately when the result
    comes up, instead of polling storage.
    """

    def __init__(self):
        self.done = False
        self.cancelled = False
        self.value: Any = None
        self._ready = None

    def _condition(self):
        if self._ready is None:
            self._ready = self.new_condition()
        return self._ready

    def set(self, call: DsoCall, value: Any) -> None:
        if self.done:
            raise ValueError("future already completed")
        self.value = value
        self.done = True
        self._condition().notify_all()

    def get(self, call: DsoCall) -> Any:
        condition = self._condition()
        while not self.done and not self.cancelled:
            condition.wait(call)
        if self.cancelled:
            raise FutureCancelledError("future was cancelled")
        return self.value

    def cancel(self, call: DsoCall) -> bool:
        if self.done:
            return False
        self.cancelled = True
        self.done = True
        self._condition().notify_all()
        return True

    def is_done(self, call: DsoCall) -> bool:
        return self.done


class _CountDownLatch(ServerObject):
    def __init__(self, count: int):
        if count < 0:
            raise ValueError(f"negative count: {count}")
        self.count = count
        self._zero = None

    def _condition(self):
        if self._zero is None:
            self._zero = self.new_condition()
        return self._zero

    def count_down(self, call: DsoCall) -> None:
        if self.count > 0:
            self.count -= 1
            if self.count == 0:
                self._condition().notify_all()

    def await_(self, call: DsoCall) -> None:
        condition = self._condition()
        while self.count > 0:
            condition.wait(call)

    def get_count(self, call: DsoCall) -> int:
        return self.count


# ---------------------------------------------------------------------------
# Client proxies
# ---------------------------------------------------------------------------


class CyclicBarrier(DsoProxy):
    """Distributed cyclic barrier (java.util.concurrent semantics)."""

    _server_cls = _CyclicBarrier

    def __init__(self, key: str, parties: int, **kwargs):
        super().__init__(key, parties, **kwargs)

    def wait(self) -> int:
        """Arrive and block until all parties have arrived."""
        return self._invoke("await_")

    #: Java-flavoured alias (``await`` is reserved in Python).
    await_ = wait

    def reset(self) -> None:
        self._invoke("reset")

    def get_parties(self) -> int:
        return self._invoke("get_parties")

    def get_number_waiting(self) -> int:
        return self._invoke("get_number_waiting")


class Semaphore(DsoProxy):
    """Distributed counting semaphore."""

    _server_cls = _Semaphore

    def __init__(self, key: str, permits: int, **kwargs):
        super().__init__(key, permits, **kwargs)

    def acquire(self, permits: int = 1) -> None:
        self._invoke("acquire", permits)

    def try_acquire(self, permits: int = 1) -> bool:
        return self._invoke("try_acquire", permits)

    def release(self, permits: int = 1) -> None:
        self._invoke("release", permits)

    def available_permits(self) -> int:
        return self._invoke("available_permits")

    def __enter__(self) -> "Semaphore":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class Future(DsoProxy):
    """Distributed single-assignment future."""

    _server_cls = _Future

    def set(self, value: Any) -> None:
        self._invoke("set", value)

    def get(self) -> Any:
        return self._invoke("get")

    def cancel(self) -> bool:
        return self._invoke("cancel")

    def is_done(self) -> bool:
        return self._invoke("is_done")


class CountDownLatch(DsoProxy):
    """Distributed count-down latch."""

    _server_cls = _CountDownLatch

    def __init__(self, key: str, count: int, **kwargs):
        super().__init__(key, count, **kwargs)

    def count_down(self) -> None:
        self._invoke("count_down")

    def wait(self) -> None:
        self._invoke("await_")

    await_ = wait

    def get_count(self) -> int:
        return self._invoke("get_count")
