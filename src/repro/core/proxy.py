"""Client-side proxies for shared objects.

"During the execution of a cloud thread, each access to a shared
object is mediated by a proxy" (Section 4.3).  A proxy holds only the
object's reference and construction recipe: calling one of its methods
ships the invocation to the DSO layer from wherever the calling thread
currently executes (client process or function container).

Proxies are picklable — they travel inside Runnables to cloud
functions and re-bind to the active environment on arrival, which is
how Crucial "establishes the connection to the DSO layer" inside each
function.
"""

from __future__ import annotations

from typing import Any

from repro.core.runtime import current_environment, current_location
from repro.dso.reference import DsoReference, reference_for


class DsoProxy:
    """Base proxy: reference + constructor recipe + invocation.

    Subclasses set ``_server_cls`` to the server-side class and expose
    typed methods that call :meth:`_invoke`.
    """

    _server_cls: type | None = None

    def __init__(self, key: str, *ctor_args: Any, persistent: bool = False,
                 rf: int | None = None, **ctor_kwargs: Any):
        if self._server_cls is None:
            raise TypeError(
                f"{type(self).__name__} does not define a server class")
        self._ref = reference_for(self._server_cls, key,
                                  persistent=persistent, rf=rf)
        self._ctor = (self._server_cls, ctor_args, ctor_kwargs)

    @property
    def ref(self) -> DsoReference:
        return self._ref

    @property
    def key(self) -> str:
        return self._ref.key

    def _invoke(self, method: str, *args: Any, cost: float = 0.0,
                **kwargs: Any) -> Any:
        env = current_environment()
        return env.dso.invoke(
            current_location(), self._ref, method, args, kwargs,
            ctor=self._ctor, cost=cost)

    def invoke_async(self, method: str, *args: Any, cost: float = 0.0,
                     **kwargs: Any):
        """Ship ``method`` without waiting for the reply.

        Returns a :class:`repro.dso.pipeline.DsoFuture`; the op is
        batched with other queued invocations from this endpoint (see
        ``DsoLayer.invoke_async``).  ``future.result()`` blocks until
        the reply arrives, re-raising remote application exceptions.
        """
        env = current_environment()
        return env.dso.invoke_async(
            current_location(), self._ref, method, args, kwargs,
            ctor=self._ctor, cost=cost)

    def _ensure(self) -> None:
        """Force creation without invoking any method."""
        self._invoke("__dso_touch__")

    def delete(self) -> None:
        """Explicitly remove the object from storage (how persistent
        objects are reclaimed, Section 3.1)."""
        env = current_environment()
        env.dso.delete(current_location(), self._ref)

    # -- marshalling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {"_ref": self._ref, "_ctor": self._ctor}

    def __setstate__(self, state: dict) -> None:
        self._ref = state["_ref"]
        self._ctor = state["_ctor"]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._ref}>"


class GenericProxy(DsoProxy):
    """Proxy for user-defined ``@Shared`` classes.

    Every attribute access resolves to a remote method; per-method CPU
    costs come from the server class's ``__dso_costs__`` mapping (see
    :func:`repro.core.shared.dso_costs`).
    """

    def __init__(self, server_cls: type, key: str, *ctor_args: Any,
                 persistent: bool = False, rf: int | None = None,
                 **ctor_kwargs: Any):
        self._server_cls = server_cls  # instance attr shadows class attr
        super().__init__(key, *ctor_args, persistent=persistent, rf=rf,
                         **ctor_kwargs)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        costs = getattr(self._server_cls, "__dso_costs__", {})
        cost_fn = costs.get(name)

        def remote_method(*args: Any, **kwargs: Any) -> Any:
            cost = float(cost_fn(*args, **kwargs)) if cost_fn else 0.0
            return self._invoke(name, *args, cost=cost, **kwargs)

        remote_method.__name__ = name
        return remote_method

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_server_cls"] = self._server_cls
        return state

    def __setstate__(self, state: dict) -> None:
        self._server_cls = state["_server_cls"]
        super().__setstate__(state)
