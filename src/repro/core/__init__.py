"""Crucial's programming model (Table 1 abstractions).

* :class:`CloudThread` — serverless functions invoked like threads;
* shared objects — linearizable ``AtomicInt``/``AtomicLong``/
  ``AtomicBoolean``/``AtomicByteArray``/``SharedList``/``SharedMap``;
* synchronization objects — ``CyclicBarrier``, ``Semaphore``,
  ``Future``, ``CountDownLatch``;
* :func:`shared` — user-defined shared objects (the ``@Shared``
  annotation), with ``persistent=True`` enabling replication.

.. note:: ``repro.core`` and its submodules are **internal**.  Import
   these names from the top-level :mod:`repro` package instead; the
   submodule layout may change without notice.
"""

from repro.core.runtime import CrucialEnvironment, current_environment
from repro.core.cloud_thread import CloudThread, run_all
from repro.core.idempotency import IdempotentStep, once
from repro.core.retry import RetryPolicy, backoff_schedule
from repro.core.shared import SharedField, dso_costs, shared
from repro.core.objects import (
    AtomicBoolean,
    AtomicByteArray,
    AtomicInt,
    AtomicLong,
    AtomicReference,
    SharedList,
    SharedMap,
)
from repro.core.sync import CountDownLatch, CyclicBarrier, Future, Semaphore

__all__ = [
    "CrucialEnvironment",
    "current_environment",
    "CloudThread",
    "RetryPolicy",
    "backoff_schedule",
    "run_all",
    "IdempotentStep",
    "once",
    "shared",
    "SharedField",
    "dso_costs",
    "AtomicInt",
    "AtomicLong",
    "AtomicBoolean",
    "AtomicByteArray",
    "AtomicReference",
    "SharedList",
    "SharedMap",
    "CyclicBarrier",
    "Semaphore",
    "Future",
    "CountDownLatch",
]
