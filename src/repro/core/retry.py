"""Retry schedules shared by the FaaS and DSO client paths.

:class:`RetryPolicy` is the client-side control over re-invocation the
paper describes in Section 4.4, extended with the schedule every
production SDK ships: exponential backoff with a cap and deterministic
seeded jitter.  The same :meth:`RetryPolicy.delay` schedule backs both
:class:`repro.core.cloud_thread.CloudThread` re-invocations and the
DSO layer's transient-failure retry loop (whose knobs live in
:class:`repro.config.DsoTimings`), so a single calibration governs how
aggressively the whole stack hammers a recovering service.

This module deliberately has no dependency on the runtime or the DSO
layer — both import it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side control over function re-invocation (Section 4.4).

    ``backoff`` is the delay before the first retry; each further
    retry multiplies it by ``multiplier`` up to ``max_backoff``.
    ``jitter`` adds up to that fraction of extra delay, drawn from a
    caller-supplied deterministic stream — seeded runs stay
    replayable, but concurrent clients spread out instead of
    retrying in lockstep.
    """

    max_retries: int = 0
    backoff: float = 1.0
    multiplier: float = 2.0
    max_backoff: float = 60.0
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"negative retries: {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"negative backoff: {self.backoff}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"backoff multiplier must be >= 1: {self.multiplier}")
        if self.max_backoff < 0:
            raise ValueError(f"negative max backoff: {self.max_backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    def delay(self, attempt: int, rng=None) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based).

        ``rng`` is a numpy ``Generator`` (a kernel RNG stream); omit it
        to get the jitter-free base schedule.
        """
        if attempt < 0:
            raise ValueError(f"negative attempt: {attempt}")
        base = min(self.backoff * self.multiplier ** attempt,
                   self.max_backoff)
        if rng is not None and self.jitter > 0 and base > 0:
            base *= 1.0 + self.jitter * float(rng.random())
        return base


def backoff_schedule(policy: RetryPolicy, retries: int) -> list[float]:
    """The first ``retries`` base delays of ``policy`` (no jitter)."""
    return [policy.delay(attempt) for attempt in range(retries)]
